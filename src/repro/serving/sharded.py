"""ShardedHub — scale the monitor hub out across worker processes.

A single :class:`~repro.serving.hub.MonitorHub` serves ~1000 monitors at
batch speed, but all tenant ingest funnels through one GIL-bound Python
process.  :class:`ShardedHub` removes that ceiling by partitioning the
``(tenant, monitor_id)`` keyspace across N shared-nothing worker processes:

* **Slot-based routing** — :func:`route_slot` hashes the key with BLAKE2b
  (process-independent, unlike the salted builtin ``hash``) into a fixed
  space of :data:`N_SLOTS` slots, and a slot → shard assignment table maps
  slots to workers.  The table — not the shard count — is the routing
  authority: it is carried in the cluster manifest, survives restarts, and
  is rewritten by :meth:`ShardedHub.reshard`, so growing or shrinking the
  cluster moves only the slots that change owner instead of remapping the
  whole keyspace.
* **Live elastic resharding** — :meth:`ShardedHub.reshard` moves monitors
  between live workers through the bit-exact ``state_dict`` snapshot
  contract: quiesce, checkpoint, copy the moving slots' monitors to their
  new owners, make the copies durable, then atomically rewrite the manifest
  (the commit point) and clean up.  Alert sequence numbers travel with the
  monitors, so exactly-once delivery survives a reshard; a crash at any
  point leaves a layout the resume/respawn machinery recovers exactly.
* **Shared-memory fan-out** — with ``transport="shm"`` (the default) the
  hot :meth:`ShardedHub.ingest` path writes each shard's float batch into a
  per-shard ``multiprocessing.shared_memory`` segment and sends only tiny
  ``(segment, offsets)`` descriptors over the pipes; workers wrap the bytes
  in zero-copy numpy views.  The classic pickle path remains as
  ``transport="pickle"`` and as the automatic fallback.
* **Per-shard checkpoints + cluster manifest** — every worker owns a
  ``shard-NN/hub-checkpoint.json`` written with the hub's atomic snapshot
  machinery, and :meth:`ShardedHub.checkpoint` records a
  ``cluster-manifest.json`` with the shard count, the assignment table, and
  per-shard composition hashes.  ``kill -9`` of any worker loses nothing
  past that shard's last checkpoint (:meth:`respawn_shard` resumes it
  bit-exactly), and opening a checkpoint directory whose manifest disagrees
  with the requested layout raises
  :class:`~repro.exceptions.SnapshotError` instead of silently mis-routing.
* **Aggregation** — ``ObserveResult``s, ``stats()`` counters, and alert
  drains come back over the worker pipes; alerts buffer in one
  :class:`~repro.serving.sinks.QueueSink` per shard and
  :meth:`drain_alerts` merges them (with the total dropped-alert count).

Detectors cross the process boundary via their ``__reduce__`` hook, which
pickles through the bit-exact ``state_dict`` snapshot contract, so
registering a pre-positioned detector instance on a shard is loss-free.
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import signal
from multiprocessing.connection import Connection
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.base import DriftDetector, as_value_array
from repro.exceptions import ConfigurationError, ShardError, SnapshotError
from repro.obs.journal import EventJournal
from repro.obs.trace import TraceContext, Tracer
from repro.serving.hub import Event, MonitorHub, ObserveResult
from repro.serving.sinks import AlertSink, DriftAlert, JsonlAuditSink, QueueSink, WebhookSink
from repro.serving.snapshot import atomic_write_json
from repro.serving.wal import read_wal_head

try:  # pragma: no cover - present on every supported CPython
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

__all__ = [
    "ShardedHub",
    "route_slot",
    "route_shard",
    "default_slot_assignment",
    "N_SLOTS",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
]

logger = logging.getLogger(__name__)

#: Version of the cluster manifest document schema.  Version 2 added the
#: slot → shard ``assignment`` table (plus the ``prev_assignment`` /
#: ``pending`` reshard bookkeeping); version-1 manifests are still readable —
#: resume synthesizes the modulo-equivalent table (see ``_resume_plan``).
MANIFEST_SCHEMA_VERSION = 2

#: Manifest schema versions resume accepts.
_READABLE_MANIFEST_VERSIONS = (1, 2)

#: File name of the cluster manifest inside ``checkpoint_dir``.
MANIFEST_FILENAME = "cluster-manifest.json"

#: Size of the fixed slot space keys hash into.  Every cluster layout is an
#: assignment of these slots to shards; reshards move slots, never rehash
#: keys.  256 slots bound a cluster at 256 shards while keeping the
#: manifest table human-readable.
N_SLOTS = 256

_MonitorKey = Tuple[str, str]


def _key_digest(tenant: str, monitor_id: str) -> int:
    digest = hashlib.blake2b(
        f"{tenant}\x00{monitor_id}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def route_slot(tenant: str, monitor_id: str) -> int:
    """Deterministic stable slot of a ``(tenant, monitor_id)`` key.

    BLAKE2b over the NUL-joined key (tenant and monitor ids are free-form
    strings; NUL keeps ``("a", "b/c")`` and ``("a/b", "c")`` distinct),
    taken modulo :data:`N_SLOTS`.  Stable across processes, interpreter
    restarts, and platforms — the property the per-shard checkpoints rely
    on.  Which *shard* serves the slot is the cluster's assignment table
    (:attr:`ShardedHub.assignment`), not a function of the key.
    """
    return _key_digest(tenant, monitor_id) % N_SLOTS


def default_slot_assignment(n_shards: int) -> List[int]:
    """The slot → shard table of a fresh ``n_shards``-shard cluster.

    Round-robin (``slot % n_shards``): balanced to within one slot, and —
    because :func:`route_slot` is itself a modulo of the same digest — for
    shard counts that divide :data:`N_SLOTS` it places every key on exactly
    the shard the pre-slot ``digest % n_shards`` routing chose, which is
    what makes v1 checkpoint migration a pure table synthesis.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    return [slot % n_shards for slot in range(N_SLOTS)]


def route_shard(tenant: str, monitor_id: str, n_shards: int) -> int:
    """Shard of a key under a fresh ``n_shards``-shard cluster's layout.

    .. deprecated::
        Kept as a thin compatibility wrapper over :func:`route_slot` plus
        :func:`default_slot_assignment`.  It answers "where would a
        never-resharded ``n_shards`` cluster place this key" — for a live
        cluster (whose table may have diverged through
        :meth:`ShardedHub.reshard`) ask :meth:`ShardedHub.shard_of`
        instead.
    """
    return default_slot_assignment(n_shards)[route_slot(tenant, monitor_id)]


def _legacy_route_shard(tenant: str, monitor_id: str, n_shards: int) -> int:
    """The pre-slot (manifest v1) direct-modulo routing, for migration."""
    return _key_digest(tenant, monitor_id) % n_shards


def _rebalance_assignment(assignment: Sequence[int], n_shards: int) -> List[int]:
    """Rebalance a slot table onto ``n_shards`` shards, moving minimally.

    Deterministic: surviving shards keep their lowest-numbered slots up to
    their quota (``N_SLOTS // n`` plus one for the first ``N_SLOTS % n``
    shards); slots owned by removed shards and surplus slots pool up and are
    dealt, in slot order, to the under-quota shards in index order.  Only
    slots that *must* change owner do.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    n_slots = len(assignment)
    base, extra = divmod(n_slots, n_shards)
    quota = [base + (1 if index < extra else 0) for index in range(n_shards)]
    counts = [0] * n_shards
    rebalanced = [-1] * n_slots
    pool: List[int] = []
    for slot, owner in enumerate(assignment):
        if 0 <= owner < n_shards and counts[owner] < quota[owner]:
            rebalanced[slot] = owner
            counts[owner] += 1
        else:
            pool.append(slot)
    receiver = 0
    for slot in pool:
        while counts[receiver] >= quota[receiver]:
            receiver += 1
        rebalanced[slot] = receiver
        counts[receiver] += 1
    return rebalanced


def _shard_dirname(index: int) -> str:
    return f"shard-{index:02d}"


# --------------------------------------------------------------- worker side


def _safe_send(conn: Connection, reply: Tuple[str, Any]) -> None:
    """Send a reply, downgrading unpicklable payloads to a ShardError."""
    try:
        conn.send(reply)
    except Exception as exc:  # pragma: no cover - defensive  # repro: allow(broad-except) -- an unpicklable reply is downgraded to a ShardError reply the parent re-raises; if even that send fails, the worker loop dies and the parent surfaces EOF as a dead shard
        conn.send(("error", ShardError(f"worker reply failed to serialize: {exc!r}")))


def _tracker_is_inherited() -> bool:
    """Whether this worker shares its parent's resource-tracker process.

    Under the ``fork`` start method the tracker's pipe fd survives into the
    child, so register/unregister messages land in the *parent's* tracker;
    under ``spawn`` the fd starts unset and the first registration launches
    a child-private tracker.  Must be sampled before any shared-memory call
    (which would itself set the fd).
    """
    try:
        from multiprocessing import resource_tracker

        return resource_tracker._resource_tracker._fd is not None
    except Exception:  # pragma: no cover - tracker internals moved  # repro: allow(broad-except) -- probes private resource_tracker internals; False is the safe answer (the spurious registration is then revoked explicitly in _worker_attach_shm)
        return False


def _worker_attach_shm(
    name: str, cache: Dict[str, Any], tracker_inherited: bool
) -> Any:
    """Attach (and cache) the parent's shared-memory segment by name.

    The parent owns at most one live segment per shard, so a new name
    retires every cached one.  Python < 3.13 registers an *attached*
    segment with the resource tracker as if this process owned it; when the
    worker runs its own tracker (``spawn``) that registration would unlink
    the parent's segment on worker exit, so it is immediately revoked.
    When the tracker is the parent's (``fork``) the registration is an
    idempotent no-op and revoking it would instead break the *parent's*
    unlink bookkeeping — so it is left alone.
    """
    block = cache.get(name)
    if block is not None:
        return block
    for stale_name in list(cache):
        try:
            cache.pop(stale_name).close()
        except Exception:  # pragma: no cover - view still referenced  # repro: allow(broad-except) -- retiring a superseded segment view; at worst an fd lingers until worker exit, no data path depends on the close
            pass
    block = _shared_memory.SharedMemory(name=name)
    # Cache the view before the tracker dance below: once it is in the
    # cache the worker's shutdown path owns the close, so no path between
    # attach and return can leak the mapping.
    cache[name] = block
    if not tracker_inherited:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API differences  # repro: allow(broad-except) -- best-effort revocation of a bookkeeping entry across python-version tracker APIs; failure merely re-allows the double-unlink warning the revocation exists to silence
            pass
    return block


def _shard_worker_main(
    index: int,
    conn: Connection,
    checkpoint_dir: Optional[str],
    checkpoint_every: Optional[int],
    resume: bool,
    alert_buffer: Optional[int],
    audit_log: Optional[str],
    wal_dir: Optional[str] = None,
    wal_fsync: str = "batch",
    webhook: Optional[str] = None,
    webhook_dead_letter: Optional[str] = None,
) -> None:
    """Request/reply loop of one shard worker (one ``MonitorHub`` per shard).

    Every request is a ``(op, payload)`` tuple and gets exactly one
    ``("ok", value)`` or ``("error", exception)`` reply, so the parent and
    worker can never desynchronise.  Library errors (``ReproError`` family)
    travel back as values and are re-raised in the parent; the worker itself
    stays alive.  EOF on the pipe (parent gone) ends the worker.
    """
    # The parent owns shutdown: terminal Ctrl-C must not kill workers before
    # the parent has written its final checkpoint.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        # The worker's tracer never opens roots of its own (sample_rate=0):
        # sampling is the parent's decision, and a propagated trace context
        # in an ingest payload makes child spans record regardless.  The
        # process label is what Perfetto shows as this worker's track.
        journal = EventJournal(capacity=256)
        tracer = Tracer(sample_rate=0.0, process=_shard_dirname(index))
        # Sinks are built *before* the hub so they are constructor-provided
        # and the resume-time WAL replay re-delivers the post-checkpoint
        # alert tail into them (a sink attached afterwards would miss it).
        alerts = QueueSink(maxlen=alert_buffer)
        sinks: List[AlertSink] = [alerts]
        if audit_log is not None:
            sinks.append(JsonlAuditSink(audit_log))
        if webhook is not None:
            sinks.append(
                WebhookSink(
                    webhook,
                    dead_letter_path=webhook_dead_letter,
                    on_breaker_open=lambda info: journal.record(
                        "webhook_breaker_open", **info
                    ),
                )
            )
        hub = MonitorHub(
            checkpoint_dir=checkpoint_dir,
            sinks=sinks,
            checkpoint_every=checkpoint_every,
            resume=resume,
            wal_dir=wal_dir,
            wal_fsync=wal_fsync,
            tracer=tracer,
            journal=journal,
        )
    except BaseException as exc:  # repro: allow(broad-except) -- worker-hub construction failed; the exception is forwarded verbatim to the parent (which re-raises it at spawn) and the worker exits
        _safe_send(conn, ("error", exc))
        return

    shm_cache: Dict[str, Any] = {}
    tracker_inherited = _tracker_is_inherited()
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if op == "ingest":
                # Payload is (events,) or (events, trace_ctx) — positional
                # forwarding matches MonitorHub.ingest's signature.
                result: Any = hub.ingest(*payload)
            elif op == "ingest_shm":
                name, total, entries, ctx = (
                    payload if len(payload) == 4 else (*payload, None)
                )
                block = _worker_attach_shm(name, shm_cache, tracker_inherited)
                values = np.ndarray(
                    (total,), dtype=np.float64, buffer=block.buf
                )
                result = hub.ingest(
                    [
                        (tenant, monitor_id, values[offset : offset + length])
                        for tenant, monitor_id, offset, length in entries
                    ],
                    trace_ctx=ctx,
                )
            elif op == "observe":
                result = hub.observe(*payload)
            elif op == "observe_stats":
                result = hub.observe_with_stats(*payload)
            elif op == "register":
                tenant, monitor_id, spec, params, exist_ok = payload
                detector = hub.register(
                    tenant, monitor_id, spec, params=params, exist_ok=exist_ok
                )
                result = {
                    "detector": type(detector).__name__,
                    "n_seen": detector.n_seen,
                }
            elif op == "stats":
                result = hub.stats(*payload)
            elif op == "alerts":
                result = (alerts.drain(), alerts.n_dropped)
            elif op == "list_monitors":
                result = [
                    (tenant, monitor_id, type(detector).__name__)
                    for tenant, monitor_id, detector in hub.monitors()
                ]
            elif op == "export_monitors":
                result = hub.export_monitors(payload[0])
            elif op == "import_monitors":
                result = hub.import_monitors(payload[0])
            elif op == "forget_monitors":
                result = hub.forget_monitors(payload[0])
            elif op == "metrics":
                result = {"shard": index, **hub.metrics()}
            elif op == "trace_drain":
                result = hub.drain_trace()
            elif op == "events":
                result = hub.journal_events(*payload)
            elif op == "alerts_history":
                result = hub.alerts_history(**payload[0])
            elif op == "checkpoint":
                path = hub.checkpoint()
                result = {
                    "path": str(path),
                    "config_hash": hub.composition_hash(),
                    "n_events": hub.n_events,
                    "n_monitors": len(hub),
                    "wal": hub.wal_head(),
                }
            elif op == "describe":
                result = {
                    "config_hash": hub.composition_hash(),
                    "n_events": hub.n_events,
                    "n_monitors": len(hub),
                    "wal": hub.wal_head(),
                }
            elif op == "composition_hash":
                result = hub.composition_hash()
            elif op == "stop":
                _safe_send(conn, ("ok", None))
                break
            else:
                raise ShardError(f"unknown worker op {op!r}")
        except Exception as exc:  # repro: allow(broad-except) -- the worker op loop forwards every failure to the parent as an ('error', exc) reply; _call/_fan_out re-raise it in the caller's process, so nothing is swallowed
            _safe_send(conn, ("error", exc))
        else:
            _safe_send(conn, ("ok", result))
    hub.close()
    journal.close()
    for block in shm_cache.values():
        try:
            block.close()
        except Exception:  # pragma: no cover - view still referenced  # repro: allow(broad-except) -- worker-exit cleanup of attached views; the parent owns and unlinks the segments, so a failed close leaks nothing past process exit
            pass
    conn.close()


# --------------------------------------------------------------- parent side


class ShardedHub:
    """Partition the monitor keyspace across N shared-nothing worker processes.

    The public surface mirrors :class:`MonitorHub` (``register`` /
    ``observe`` / ``ingest`` / ``stats`` / ``checkpoint`` / ``close``) so the
    TCP server fronts either interchangeably, with two deliberate
    differences: detectors live only inside the workers (``register`` returns
    an info dict, not the instance), and alerts are polled with
    :meth:`drain_alerts` instead of parent-side sinks.

    Parameters
    ----------
    n_shards:
        Number of worker processes.  Fixed for the lifetime of a checkpoint
        directory *except* through :meth:`reshard` — resuming with a count
        that disagrees with the manifest raises :class:`SnapshotError`
        (reshard explicitly instead of mis-routing).
    checkpoint_dir:
        Cluster checkpoint root; each shard owns ``shard-NN/`` inside it and
        the manifest records the composition and the slot table.
    checkpoint_every:
        Per-shard auto-checkpoint period, counted in values observed by that
        shard (forwarded to each worker's ``MonitorHub``).
    resume:
        Resume every shard from its checkpoint when present.
    alert_buffer:
        ``maxlen`` of each shard's in-worker :class:`QueueSink` (``None`` =
        unbounded); dropped-alert counts aggregate in :meth:`drain_alerts`.
    audit_log:
        When set, each worker appends alerts to ``<audit_log>.shard-NN``
        (one file per shard — concurrent writers never interleave a line).
    wal_dir:
        Root of the durable alert write-ahead logs; each shard owns
        ``<wal_dir>/shard-NN`` (shared-nothing, like the checkpoints).  The
        cluster manifest records every shard's ``(wal_id, segment_index)``
        head, and resuming against WAL directories that disagree with the
        manifest raises :class:`SnapshotError` (see :meth:`_validate_wal_heads`).
    wal_fsync:
        WAL durability mode forwarded to every shard (``"batch"`` |
        ``"always"`` | ``"off"``).
    webhook:
        When set, each worker POSTs alerts to this URL through a
        :class:`~repro.serving.sinks.WebhookSink` (bounded retries, circuit
        breaker — a down endpoint never blocks ingest).
    webhook_dead_letter:
        Dead-letter JSONL root for undeliverable webhook alerts; each shard
        writes ``<path>.shard-NN``.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    request_timeout:
        Seconds to wait for a worker's reply before declaring it hung
        (``None`` = wait forever).  A worker that is alive but wedged (a
        deadlock, a ``SIGSTOP``) would otherwise block the caller
        indefinitely while ``dead_shards()`` reports a healthy cluster; on
        timeout the worker is killed — turning "hung" into "dead", which the
        respawn machinery knows how to recover — and :class:`ShardError` is
        raised.  Size it well above the slowest expected flush: a false
        positive costs a checkpoint rollback.
    transport:
        Fan-out transport of the hot :meth:`ingest` path.  ``"shm"`` (the
        default) stages each shard's float batch in a per-shard
        ``multiprocessing.shared_memory`` segment so workers read it
        zero-copy; only tiny descriptors cross the pipes.  ``"pickle"``
        sends the batches through the pipes (the classic path; also the
        automatic fallback when shared memory is unavailable).  The two are
        bit-identical in outcome — ``benchmarks/bench_serving_sharded.py``
        measures the gap.
    tracer:
        The parent-side :class:`~repro.obs.trace.Tracer` (defaults to a
        disabled one).  When it samples an ingest, the span's trace context
        rides the fan-out messages — over both transports — and each
        worker's spans stitch underneath it; :meth:`drain_trace` merges the
        spans of every process into one exportable batch.
    journal:
        The parent-side :class:`~repro.obs.journal.EventJournal`; defaults
        to a private bounded ring.  Cluster-level operational events land
        here (shard respawns, reshard phase transitions, transport
        fallbacks, timeout kills, cleanup failures); each worker hub keeps
        its own journal and :meth:`journal_events` merges them by time.
    """

    def __init__(
        self,
        n_shards: int,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        resume: bool = True,
        alert_buffer: Optional[int] = 10_000,
        audit_log: Optional[str] = None,
        wal_dir: Optional[Union[str, Path]] = None,
        wal_fsync: str = "batch",
        webhook: Optional[str] = None,
        webhook_dead_letter: Optional[str] = None,
        start_method: Optional[str] = None,
        request_timeout: Optional[float] = None,
        transport: str = "shm",
        tracer: Optional[Tracer] = None,
        journal: Optional[EventJournal] = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if n_shards > N_SLOTS:
            raise ConfigurationError(
                f"n_shards must be <= {N_SLOTS} (the slot space), got {n_shards}"
            )
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir — without one the "
                "periodic checkpoints would silently never be written"
            )
        if transport not in ("shm", "pickle"):
            raise ConfigurationError(
                f"transport must be 'shm' or 'pickle', got {transport!r}"
            )
        self._n_shards = n_shards
        self._checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self._checkpoint_every = checkpoint_every
        self._resume = resume
        if request_timeout is not None and request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive, got {request_timeout}"
            )
        self._alert_buffer = alert_buffer
        self._audit_log = audit_log
        self._wal_dir = Path(wal_dir) if wal_dir else None
        self._wal_fsync = wal_fsync
        self._webhook = webhook
        self._webhook_dead_letter = webhook_dead_letter
        self._request_timeout = request_timeout
        if transport == "shm" and _shared_memory is None:  # pragma: no cover
            logger.warning(
                "multiprocessing.shared_memory is unavailable; "
                "falling back to the pickle transport"
            )
            transport = "pickle"
        self._transport = transport
        self._tracer = tracer if tracer is not None else Tracer()
        self._owns_journal = journal is None
        self._journal = (
            journal if journal is not None else EventJournal(capacity=512)
        )
        self._shm_blocks: Dict[int, Any] = {}
        self._context = multiprocessing.get_context(start_method)
        self._closed = False
        self._registry: Dict[_MonitorKey, int] = {}
        self._assignment: List[int] = default_slot_assignment(n_shards)
        #: Alerts drained out of workers removed by a shrink, merged into
        #: the next :meth:`drain_alerts`; the dropped counter is the
        #: lifetime eviction count of those retired workers.
        self._parked_alerts: List[DriftAlert] = []
        self._parked_dropped = 0
        #: Best-effort failures an operator must be able to see without
        #: grepping logs: reshard cleanup/rollback steps that could not
        #: complete (recoverable duplicates until respawn_dead_shards), and
        #: shm-transport downgrades to the pickle path.
        self._n_cleanup_failures = 0
        self._n_transport_fallbacks = 0
        #: Test seam: called with a stage name at every reshard phase
        #: boundary so crash-injection tests can kill workers mid-protocol.
        self._reshard_test_hook: Optional[Callable[[str], None]] = None
        self._processes: List[Optional[multiprocessing.process.BaseProcess]] = [
            None
        ] * n_shards
        self._conns: List[Optional[Connection]] = [None] * n_shards

        plan = self._resume_plan() if resume else None
        if plan is not None:
            self._assignment = plan["assignment"]
        try:
            for index in range(n_shards):
                self._spawn(index, resume=resume)
            # Also the startup handshake (for resume=False the listings are
            # empty): a worker whose hub failed to construct surfaces the
            # real exception here instead of an opaque dead pipe later.
            migrated = self._adopt_cluster(plan)
            if self._checkpoint_dir is not None:
                # Write the manifest up front, not only in checkpoint():
                # per-shard auto-checkpoints (checkpoint_every) never touch
                # it, and without a manifest the layout guard cannot fire —
                # opening a 4-shard directory as 2 shards would silently
                # drop the other shards' monitors.  When adoption moved or
                # deduplicated monitors (a v1 migration, an interrupted
                # reshard), checkpoint first so the clean v2 manifest never
                # points at shard files that contradict it.
                reports = self._broadcast(
                    "checkpoint" if migrated else "describe"
                )
                self._write_manifest(reports)
        except BaseException:
            # A failed resume (corrupt shard checkpoint, mis-assembled
            # directories) must not leak live worker processes and pipes.
            self.close()
            raise

    # ------------------------------------------------------------- lifecycle

    def _resume_plan(self) -> Optional[Dict[str, Any]]:
        """Read the manifest into a resume plan (assignment + provenance).

        The plan carries the authoritative slot table plus the legitimate
        *alternative* locations a monitor may be found in:

        * ``legacy`` — a v1 manifest; keys may sit on their old direct
          ``digest % n_shards`` shard and migrate to the synthesized slot
          table once.
        * ``pending`` — a reshard crashed before its commit point; copies
          may exist on the intended targets (the committed table wins).
        * ``prev`` — a reshard committed but crashed during cleanup; stale
          source copies may remain (the new table wins).

        Anything found elsewhere is mis-assembly and raises.
        """
        plan: Dict[str, Any] = {
            "assignment": default_slot_assignment(self._n_shards),
            "legacy": False,
            "pending": None,
            "prev": None,
        }
        if self._checkpoint_dir is None:
            return plan
        path = self._checkpoint_dir / MANIFEST_FILENAME
        if not path.is_file():
            return plan
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"cannot read cluster manifest {path}: {exc}") from exc
        version = manifest.get("schema_version")
        if version not in _READABLE_MANIFEST_VERSIONS:
            raise SnapshotError(
                f"cluster manifest schema version {version!r} is not supported "
                f"(expected one of {_READABLE_MANIFEST_VERSIONS})"
            )
        recorded = manifest.get("n_shards")
        if recorded != self._n_shards:
            raise SnapshotError(
                f"checkpoint directory {self._checkpoint_dir} was written by a "
                f"{recorded}-shard cluster but this hub has {self._n_shards} "
                "shards; the slot table would silently send monitors to the "
                f"wrong shard — resume with n_shards={recorded} and call "
                f"reshard({self._n_shards}), or start fresh"
            )
        if version == 1:
            # Pre-slot manifest: the synthesized round-robin table equals
            # the old digest % n layout when n divides N_SLOTS; otherwise
            # _adopt_cluster relocates the stragglers once.
            plan["legacy"] = True
            self._validate_wal_heads(manifest)
            return plan
        n_slots = manifest.get("n_slots")
        if n_slots != N_SLOTS:
            raise SnapshotError(
                f"cluster manifest uses {n_slots!r} slots but this build "
                f"routes over {N_SLOTS}; refusing to mis-route"
            )
        plan["assignment"] = self._checked_assignment(
            manifest.get("assignment"), "assignment"
        )
        pending = manifest.get("pending")
        if pending:
            plan["pending"] = self._checked_assignment(
                pending.get("assignment"),
                "pending assignment",
                n_shards=int(pending.get("n_shards", self._n_shards)),
            )
        prev = manifest.get("prev_assignment")
        if prev:
            plan["prev"] = self._checked_assignment(prev, "prev_assignment")
        self._validate_wal_heads(manifest)
        return plan

    def _checked_assignment(
        self, table: Any, label: str, n_shards: Optional[int] = None
    ) -> List[int]:
        limit = self._n_shards if n_shards is None else max(n_shards, self._n_shards)
        if not isinstance(table, list) or len(table) != N_SLOTS:
            raise SnapshotError(
                f"cluster manifest {label} is not a {N_SLOTS}-entry table"
            )
        checked = [int(shard) for shard in table]
        if any(not 0 <= shard < limit for shard in checked):
            raise SnapshotError(
                f"cluster manifest {label} references shards outside "
                f"0..{limit - 1}"
            )
        return checked

    def _validate_wal_heads(self, manifest: Dict[str, Any]) -> None:
        """Refuse to resume against WAL directories the manifest disowns.

        The manifest records each shard's ``(wal_id, segment_index)`` head at
        checkpoint time.  A WAL directory with a *different* ``wal_id``
        belongs to another cluster (or was swapped by hand) — replaying it
        would re-deliver someone else's alerts; a highest on-disk segment
        *older* than the recorded head means segments were deleted or the
        directory was restored from an earlier backup — the replay floor
        bookkeeping inside it can no longer be trusted.  Both are
        mis-assembly, so both raise instead of replaying.
        """
        if self._wal_dir is None:
            return
        for entry in manifest.get("shards", []):
            recorded_head = entry.get("wal")
            if not recorded_head:
                continue
            index = int(entry.get("index", -1))
            if not 0 <= index < self._n_shards:
                continue
            wal_dir = self._wal_dir / _shard_dirname(index)
            disk_head = read_wal_head(wal_dir)
            if disk_head is None:
                raise SnapshotError(
                    f"cluster manifest records a WAL for shard {index} "
                    f"(wal_id {recorded_head.get('wal_id')!r}) but {wal_dir} "
                    "holds none; the WAL directory was removed or swapped — "
                    "refusing to resume without it"
                )
            if disk_head.get("wal_id") != recorded_head.get("wal_id"):
                raise SnapshotError(
                    f"WAL directory {wal_dir} has wal_id "
                    f"{disk_head.get('wal_id')!r} but the cluster manifest "
                    f"recorded {recorded_head.get('wal_id')!r}; this WAL "
                    "belongs to a different cluster — refusing to replay it"
                )
            recorded_segment = int(recorded_head.get("segment_index", 0))
            if int(disk_head.get("segment_index", 0)) < recorded_segment:
                raise SnapshotError(
                    f"WAL directory {wal_dir} ends at segment "
                    f"{disk_head.get('segment_index')} but the cluster "
                    f"manifest recorded segment {recorded_segment}; the WAL "
                    "segment sequence went backwards (deleted segments or an "
                    "older backup) — refusing to replay it"
                )

    def _shard_wal_dir(self, index: int) -> Optional[str]:
        if self._wal_dir is None:
            return None
        return str(self._wal_dir / _shard_dirname(index))

    def _shard_checkpoint_dir(self, index: int) -> Optional[str]:
        if self._checkpoint_dir is None:
            return None
        return str(self._checkpoint_dir / _shard_dirname(index))

    def _spawn(self, index: int, resume: bool) -> None:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        try:
            audit = (
                f"{self._audit_log}.{_shard_dirname(index)}"
                if self._audit_log is not None
                else None
            )
            dead_letter = (
                f"{self._webhook_dead_letter}.{_shard_dirname(index)}"
                if self._webhook_dead_letter is not None
                else None
            )
            process = self._context.Process(
                target=_shard_worker_main,
                args=(
                    index,
                    child_conn,
                    self._shard_checkpoint_dir(index),
                    self._checkpoint_every,
                    resume,
                    self._alert_buffer,
                    audit,
                    self._shard_wal_dir(index),
                    self._wal_fsync,
                    self._webhook,
                    dead_letter,
                ),
                name=f"repro-shard-{index:02d}",
                daemon=True,
            )
            process.start()
        except Exception:
            # A failed spawn (fork/exec error, bad checkpoint dir) must not
            # leak the pipe pair — each retry would otherwise pin two more
            # file descriptors for the hub's lifetime.
            parent_conn.close()
            child_conn.close()
            raise
        # Record the conn first: once it is in the table, close()/reshard
        # own its lifetime, so a freak failure closing the child's end can
        # no longer strand the parent's end outside any cleanup path.
        self._conns[index] = parent_conn
        self._processes[index] = process
        child_conn.close()

    def _adopt_cluster(self, plan: Optional[Dict[str, Any]]) -> bool:
        """Mirror every shard's resumed monitors into the registry.

        Doubles as the startup handshake — a worker whose hub failed to
        construct (corrupt shard checkpoint, bad directory) surfaces the
        real exception here instead of an opaque dead pipe later.  Every
        resumed key must sit on the shard the slot table assigns it to, or
        on a location the resume plan explains (a v1 layout, an interrupted
        reshard) — those migrate or deduplicate here, through the same
        export/import/forget hand-off a live reshard uses.  Anything else
        means the checkpoint directory was assembled from a different
        cluster layout, which is a correctness error, not a warning.

        Returns whether any monitor moved or was deduplicated (callers then
        checkpoint before writing the clean manifest).
        """
        if plan is None:
            plan = {
                "assignment": self._assignment,
                "legacy": False,
                "pending": None,
                "prev": None,
            }
        self._registry = {}
        placement: Dict[_MonitorKey, List[int]] = {}
        for index in range(self._n_shards):
            for tenant, monitor_id, _ in self._call(index, "list_monitors"):
                placement.setdefault((tenant, monitor_id), []).append(index)
        migrated = False
        forgets: Dict[int, List[_MonitorKey]] = {}
        moves: Dict[int, List[_MonitorKey]] = {}
        for key, holders in placement.items():
            owner = self._assignment[route_slot(*key)]
            strays = [shard for shard in holders if shard != owner]
            for shard in strays:
                if not self._stray_allowed(key, shard, plan):
                    raise SnapshotError(
                        f"monitor {key[0]}/{key[1]} resumed on shard {shard} "
                        f"but routes to shard {owner}; the shard checkpoints "
                        "do not belong to this cluster layout"
                    )
            if owner in holders:
                # Copies beyond the owner are leftovers of an interrupted
                # reshard's cleanup phase; the committed owner wins.
                for shard in strays:
                    forgets.setdefault(shard, []).append(key)
            else:
                if len(strays) != 1:
                    raise SnapshotError(
                        f"monitor {key[0]}/{key[1]} resumed on shards "
                        f"{sorted(strays)} but routes to shard {owner}; the "
                        "shard checkpoints do not belong to this cluster layout"
                    )
                moves.setdefault(strays[0], []).append(key)
            self._registry[key] = owner
        for source, keys in sorted(moves.items()):
            per_target: Dict[int, List[_MonitorKey]] = {}
            for key in keys:
                per_target.setdefault(
                    self._assignment[route_slot(*key)], []
                ).append(key)
            records = self._call(source, "export_monitors", keys)
            by_key = {
                (record["tenant"], record["monitor_id"]): record
                for record in records
            }
            for target, target_keys in sorted(per_target.items()):
                self._call(
                    target,
                    "import_monitors",
                    [by_key[key] for key in target_keys],
                )
            self._call(source, "forget_monitors", keys)
            migrated = True
        for shard, keys in sorted(forgets.items()):
            self._call(shard, "forget_monitors", keys)
            migrated = True
        return migrated

    def _stray_allowed(
        self, key: _MonitorKey, shard: int, plan: Dict[str, Any]
    ) -> bool:
        """Whether the resume plan legitimises finding ``key`` on ``shard``."""
        tenant, monitor_id = key
        if plan["legacy"] and shard == _legacy_route_shard(
            tenant, monitor_id, self._n_shards
        ):
            return True
        slot = route_slot(tenant, monitor_id)
        for table in (plan["pending"], plan["prev"]):
            if table is not None and table[slot] == shard:
                return True
        return False

    def _adopt_shard_monitors(self, index: int) -> None:
        """Mirror a respawned shard's resumed monitors into the registry.

        Same contract as :meth:`_adopt_cluster`, scoped to one shard: every
        resumed key must be assigned to this shard, except stale duplicates
        of monitors the registry knows live elsewhere — copies a reshard's
        interrupted cleanup left in this shard's checkpoint — which are
        forgotten, not adopted.  Anything else is mis-assembly and raises.
        """
        self._registry = {
            key: shard for key, shard in self._registry.items() if shard != index
        }
        stale: List[_MonitorKey] = []
        for tenant, monitor_id, _ in self._call(index, "list_monitors"):
            key = (tenant, monitor_id)
            owner = self._assignment[route_slot(tenant, monitor_id)]
            if owner == index:
                self._registry[key] = index
                continue
            if self._registry.get(key) == owner:
                stale.append(key)
                continue
            raise SnapshotError(
                f"monitor {tenant}/{monitor_id} resumed on shard {index} "
                f"but routes to shard {owner}; the shard checkpoints "
                "do not belong to this cluster layout"
            )
        if stale:
            self._call(index, "forget_monitors", stale)

    #: Seconds :meth:`close` waits for a worker's ``stop`` reply before
    #: falling back to ``terminate()``.  Bounded regardless of
    #: ``request_timeout`` — an unbounded wait on a wedged-but-alive worker
    #: would hang shutdown and make the terminate fallback unreachable.
    _STOP_REPLY_TIMEOUT = 5.0

    def _stop_worker(self, process: Any, conn: Optional[Connection]) -> None:
        """Gracefully stop one worker: ``stop`` op, then escalate."""
        if process is not None and process.is_alive() and conn is not None:
            try:
                conn.send(("stop", ()))
                if conn.poll(self._STOP_REPLY_TIMEOUT):
                    conn.recv()
            except Exception:  # repro: allow(broad-except) -- best-effort graceful stop; the escalation ladder below (join, terminate, kill) reaps the worker whatever happened to the pipe
                pass
        if process is not None:
            process.join(timeout=self._STOP_REPLY_TIMEOUT)
            if process.is_alive():
                process.terminate()
                process.join(timeout=self._STOP_REPLY_TIMEOUT)
            if process.is_alive():
                # SIGTERM stays *pending* on a SIGSTOPped worker; SIGKILL
                # is the only signal guaranteed to reap a wedged process.
                process.kill()
                process.join(timeout=self._STOP_REPLY_TIMEOUT)
        if conn is not None:
            conn.close()

    def close(self) -> None:
        """Stop every worker (graceful ``stop`` op, then terminate stragglers)."""
        if self._closed:
            return
        stopping: List[int] = []
        for index, process in enumerate(self._processes):
            if process is None or not process.is_alive():
                continue
            try:
                self._conns[index].send(("stop", ()))
            except Exception:  # repro: allow(broad-except) -- a worker whose pipe refuses the stop op is already dead or wedged; the join/terminate/kill ladder below reaps it regardless
                continue
            stopping.append(index)
        for index in stopping:
            # Bounded wait for the reply; a wedged worker is terminated below.
            try:
                if self._conns[index].poll(self._STOP_REPLY_TIMEOUT):
                    self._conns[index].recv()
            except Exception:  # repro: allow(broad-except) -- shutdown drain of the stop reply; a broken pipe here means the worker already exited, which is the goal
                pass
        self._closed = True
        try:
            for index, process in enumerate(self._processes):
                if process is None:
                    continue
                try:
                    process.join(timeout=self._STOP_REPLY_TIMEOUT)
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=self._STOP_REPLY_TIMEOUT)
                    if process.is_alive():
                        # SIGTERM stays *pending* on a SIGSTOPped worker;
                        # SIGKILL is the only signal guaranteed to reap a
                        # wedged process.
                        process.kill()
                        process.join(timeout=self._STOP_REPLY_TIMEOUT)
                    conn = self._conns[index]
                    if conn is not None:
                        conn.close()
                except Exception:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; one unreapable worker must not keep close() from reaping the rest
                    self._note_cleanup_failure("close_worker", shard=index)
                    logger.warning("close: could not reap shard %d", index)
        finally:
            # Runs whatever happened above: the parent owns the staging
            # segments and the journal handle, and leaking them would
            # outlive the object (shm segments survive until reboot).
            for index in list(self._shm_blocks):
                self._release_shm_block(index)
            if self._owns_journal:
                self._journal.close()

    def __enter__(self) -> "ShardedHub":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------- transport

    def _recv(self, index: int) -> Tuple[str, Any]:
        """Receive one reply, enforcing ``request_timeout`` when configured.

        A timeout kills the worker (a hung worker's late reply would
        desynchronise the pipe, and ``process.is_alive()`` cannot see a
        deadlock) so the shard becomes *dead* — the state ``dead_shards()``
        reports and ``respawn_shard`` recovers from its checkpoint.
        """
        conn = self._conns[index]
        if self._request_timeout is not None and not conn.poll(
            self._request_timeout
        ):
            process = self._processes[index]
            if process is not None and process.is_alive():
                logger.error(
                    "shard %d worker did not reply within %.1fs; killing it",
                    index,
                    self._request_timeout,
                )
                process.kill()
                process.join(timeout=5)
            self._journal.record(
                "worker_timeout_killed",
                shard=index,
                timeout_s=self._request_timeout,
            )
            raise ShardError(
                f"shard {index} worker did not reply within "
                f"{self._request_timeout}s and was killed; "
                f"respawn_shard({index}) resumes it from its checkpoint"
            )
        return conn.recv()

    def _call(self, index: int, op: str, *payload: Any) -> Any:
        conn = self._conns[index]
        if self._closed or conn is None:
            raise ShardError(f"sharded hub is closed (shard {index})")
        try:
            conn.send((op, payload))
            kind, value = self._recv(index)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ShardError(
                f"shard {index} worker is not responding ({exc!r}); "
                f"respawn_shard({index}) resumes it from its checkpoint"
            ) from exc
        if kind == "error":
            raise value
        return value

    def _broadcast(
        self, op: str, *payload: Any, tolerate_dead: bool = False
    ) -> List[Any]:
        """Send one request to every shard, then collect every reply.

        All sends complete before the first receive so the workers overlap
        their compute; replies are collected from *every* shard before any
        error is re-raised, keeping each pipe strictly request/reply aligned.
        With ``tolerate_dead`` the replies of the live shards are returned
        even when some workers are gone (degraded-cluster reads).
        """
        return self._fan_out(
            range(self._n_shards),
            [(op, payload)] * self._n_shards,
            tolerate_dead=tolerate_dead,
        )

    def _fan_out(
        self,
        indices: Iterable[int],
        messages: List[Tuple[str, Tuple[Any, ...]]],
        tolerate_dead: bool = False,
    ) -> List[Any]:
        """Fan requests out to ``indices``; return the replies in that order.

        A dead shard never aborts the exchange half-way: the replies of the
        shards that did get the request are always collected (or their pipes
        would desynchronise into returning stale replies to the *next*
        request).  With ``tolerate_dead=False`` a dead shard then raises
        :class:`ShardError`; with ``tolerate_dead=True`` its reply is simply
        absent — for read paths that must keep working on a degraded cluster
        (``stats``/``drain_alerts``).  Errors raised *by* live workers
        (``ReproError`` family) propagate in both modes.
        """
        indices = list(indices)
        if self._closed:
            raise ShardError("sharded hub is closed")
        # Phase 1: send to every reachable shard.
        sent: List[int] = []
        dead_error: Optional[BaseException] = None
        worker_error: Optional[BaseException] = None
        caller_error: Optional[BaseException] = None
        for index, (op, payload) in zip(indices, messages):
            try:
                self._conns[index].send((op, payload))
            except (BrokenPipeError, OSError) as exc:
                error = ShardError(
                    f"shard {index} worker is not responding ({exc!r}); "
                    f"respawn_shard({index}) resumes it from its checkpoint"
                )
                error.__cause__ = exc
                dead_error = dead_error or error
            except Exception as exc:  # repro: allow(broad-except) -- caller_error is re-raised below, after the shards already sent to are drained; catching here prevents pipe desync, it does not swallow
                # The *payload* failed to serialize (e.g. a generator event
                # chunk the pickler rejects before anything hits the pipe) —
                # a caller error, not a dead shard.  Stop sending, but still
                # drain the shards already sent to, or their pipes would
                # hand the pending replies to the next unrelated request.
                caller_error = exc
                break
            else:
                sent.append(index)
        # Phase 2: collect one reply per delivered request.
        replies: List[Any] = []
        for index in sent:
            try:
                kind, value = self._recv(index)
            except (EOFError, OSError) as exc:
                error = ShardError(
                    f"shard {index} worker died mid-request ({exc!r}); "
                    f"respawn_shard({index}) resumes it from its checkpoint"
                )
                error.__cause__ = exc
                dead_error = dead_error or error
                continue
            except ShardError as exc:  # _recv timeout killed a hung worker
                dead_error = dead_error or exc
                continue
            if kind == "error":
                worker_error = worker_error or value
            else:
                replies.append(value)
        if caller_error is not None:
            raise caller_error
        if worker_error is not None:
            raise worker_error
        if dead_error is not None and not tolerate_dead:
            raise dead_error
        return replies

    # ------------------------------------------------- shared-memory staging

    def _release_shm_block(self, index: int) -> None:
        block = self._shm_blocks.pop(index, None)
        if block is None:
            return
        for method in (block.close, block.unlink):
            try:
                method()
            except Exception:  # pragma: no cover - already gone  # repro: allow(broad-except) -- releasing a segment that may already be closed/unlinked (worker crash, double release); there is nothing left to surface
                pass

    def _shm_block(self, index: int, nbytes: int) -> Any:
        """The shard's staging segment, grown (power-of-two) on demand.

        Growing allocates a *new* named segment and retires the old one —
        the worker switches attachments when it sees the new name, and the
        strict request/reply pipe discipline guarantees the old segment has
        no in-flight reader by the time the parent reuses or frees it.
        """
        block = self._shm_blocks.get(index)
        if block is not None and block.size >= nbytes:
            return block
        if block is not None:
            self._release_shm_block(index)
        capacity = max(64 * 1024, 1 << (max(1, nbytes) - 1).bit_length())
        block = _shared_memory.SharedMemory(create=True, size=capacity)
        self._shm_blocks[index] = block
        return block

    def _shm_message(
        self,
        index: int,
        shard_events: List[Event],
        ctx: Optional[TraceContext] = None,
    ) -> Optional[Tuple[str, Tuple[Any, ...]]]:
        """Stage one shard's batch in shared memory; descriptor message.

        Returns ``None`` to fall back to the pickle path (empty batch, or
        the segment could not be allocated — in which case the transport
        downgrades for good).  Payload conversion errors propagate: they
        are caller errors, identical to what the worker-side conversion
        would have raised, and no message has touched a pipe yet.
        """
        converted: List[Tuple[str, str, "np.ndarray"]] = []
        total = 0
        for tenant, monitor_id, payload in shard_events:
            values = as_value_array(payload)
            converted.append((tenant, monitor_id, values))
            total += values.shape[0]
        if total == 0:
            return None
        try:
            block = self._shm_block(index, total * 8)
        except Exception:
            self._n_transport_fallbacks += 1
            self._journal.record("transport_fallback", shard=index)
            logger.warning(
                "cannot allocate a shared-memory segment; falling back to "
                "the pickle transport",
                exc_info=True,
            )
            self._transport = "pickle"
            return None
        staged = np.ndarray((total,), dtype=np.float64, buffer=block.buf)
        entries: List[Tuple[str, str, int, int]] = []
        offset = 0
        for tenant, monitor_id, values in converted:
            length = values.shape[0]
            staged[offset : offset + length] = values
            entries.append((tenant, monitor_id, offset, length))
            offset += length
        return ("ingest_shm", (block.name, total, entries, ctx))

    # ---------------------------------------------------------- registration

    def register(
        self,
        tenant: str,
        monitor_id: str,
        detector: Union[str, DriftDetector] = "OPTWIN",
        params: Optional[Mapping[str, Any]] = None,
        exist_ok: bool = False,
    ) -> Dict[str, Any]:
        """Register a monitor on its shard; return ``{"detector", "n_seen"}``.

        Accepts a registry name plus params, or a ready-made detector
        instance (shipped to the worker via the bit-exact snapshot pickle).
        Unlike :meth:`MonitorHub.register` the live detector object stays
        inside the worker — shared-nothing means the parent never holds one.
        """
        key = (str(tenant), str(monitor_id))
        shard = self._assignment[route_slot(key[0], key[1])]
        info = self._call(
            shard, "register", key[0], key[1], detector, dict(params) if params else None, exist_ok
        )
        self._registry[key] = shard
        return info

    def shard_of(self, tenant: str, monitor_id: str) -> int:
        """The shard the assignment table routes a key to (registered or not)."""
        return self._assignment[route_slot(str(tenant), str(monitor_id))]

    def slot_of(self, tenant: str, monitor_id: str) -> int:
        """The slot a key hashes into (layout-independent)."""
        return route_slot(str(tenant), str(monitor_id))

    def __len__(self) -> int:
        return len(self._registry)

    def __contains__(self, key: _MonitorKey) -> bool:
        return tuple(key) in self._registry

    @property
    def n_shards(self) -> int:
        """Number of worker processes the keyspace is partitioned across."""
        return self._n_shards

    @property
    def n_slots(self) -> int:
        """Size of the slot space (fixed; see :data:`N_SLOTS`)."""
        return N_SLOTS

    @property
    def assignment(self) -> Tuple[int, ...]:
        """The live slot → shard table (index = slot)."""
        return tuple(self._assignment)

    @property
    def transport(self) -> str:
        """The active ingest fan-out transport (``"shm"`` or ``"pickle"``)."""
        return self._transport

    def monitor_keys(self) -> Iterator[Tuple[str, str, int]]:
        """Iterate ``(tenant, monitor_id, shard_index)`` over the registry."""
        for (tenant, monitor_id), shard in self._registry.items():
            yield tenant, monitor_id, shard

    def _shard_for(self, tenant: str, monitor_id: str) -> Tuple[_MonitorKey, int]:
        key = (str(tenant), str(monitor_id))
        shard = self._registry.get(key)
        if shard is None:
            raise ConfigurationError(
                f"unknown monitor {key[0]}/{key[1]}; register it first"
            )
        return key, shard

    # ------------------------------------------------------------- ingestion

    def observe(
        self,
        tenant: str,
        monitor_id: str,
        values: Any,
        trace_ctx: Optional[TraceContext] = None,
    ) -> ObserveResult:
        """Feed one monitor a value or chunk of values (oldest first)."""
        key, shard = self._shard_for(tenant, monitor_id)
        span = self._tracer.begin(
            "hub.route", trace_ctx, tenant=key[0], monitor=key[1], shard=shard
        )
        try:
            return self._call(
                shard,
                "observe",
                key[0],
                key[1],
                values,
                span.context() if span is not None else None,
            )
        finally:
            if span is not None:
                span.end()

    def observe_with_stats(
        self,
        tenant: str,
        monitor_id: str,
        values: Any,
        trace_ctx: Optional[TraceContext] = None,
    ) -> Tuple[ObserveResult, Dict[str, Any]]:
        """Feed one monitor and return ``(outcome, per-monitor stats)`` in a
        single worker round-trip (the server's ``observe`` op)."""
        key, shard = self._shard_for(tenant, monitor_id)
        span = self._tracer.begin(
            "hub.route", trace_ctx, tenant=key[0], monitor=key[1], shard=shard
        )
        try:
            return self._call(
                shard,
                "observe_stats",
                key[0],
                key[1],
                values,
                span.context() if span is not None else None,
            )
        finally:
            if span is not None:
                span.end()

    def ingest(
        self,
        events: Iterable[Event],
        trace_ctx: Optional[TraceContext] = None,
    ) -> List[ObserveResult]:
        """Fan an interleaved event batch out as one message per shard.

        Events for the same monitor keep their relative order inside their
        shard's message, so each worker's ``MonitorHub.ingest`` sees exactly
        the per-monitor sequences a single hub would have seen — detections
        are bit-identical to the unsharded run.  Results aggregate in shard
        order (within a shard, the worker hub's flush order).

        With the ``"shm"`` transport each shard's values are staged in its
        shared-memory segment and only ``(segment, offsets)`` descriptors
        cross the pipe; the worker reads the floats zero-copy.  Payloads the
        float conversion rejects raise here, before anything is sent.

        When the parent tracer samples this batch (or ``trace_ctx`` hands an
        already-open trace down), the span's context rides every shard's
        message — descriptor and pickle path alike — so the workers' spans
        stitch under one trace across processes.
        """
        span = self._tracer.begin("hub.fan_out", trace_ctx)
        try:
            per_shard: Dict[int, List[Event]] = {}
            for tenant, monitor_id, payload in events:
                key, shard = self._shard_for(tenant, monitor_id)
                per_shard.setdefault(shard, []).append((key[0], key[1], payload))
            if not per_shard:
                return []
            ctx = span.context() if span is not None else None
            indices = sorted(per_shard)
            messages: List[Tuple[str, Tuple[Any, ...]]] = []
            for index in indices:
                message = None
                if self._transport == "shm":
                    message = self._shm_message(index, per_shard[index], ctx)
                if message is None:
                    message = ("ingest", (per_shard[index], ctx))
                messages.append(message)
            replies = self._fan_out(indices, messages)
            results: List[ObserveResult] = []
            for reply in replies:
                results.extend(reply)
            if span is not None:
                span.add(
                    n_shards=len(indices),
                    n_monitors=len(results),
                    n_events=sum(outcome.n_processed for outcome in results),
                )
            return results
        finally:
            if span is not None:
                span.end()

    # ----------------------------------------------------------------- stats

    def stats(
        self, tenant: Optional[str] = None, monitor_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Aggregate counters across shards (or forward a per-monitor query).

        The hub-wide aggregate keeps working on a degraded cluster: dead
        shards are simply absent from the counter sums, and
        ``n_alive_shards < n_shards`` reports the degradation (this is how an
        operator *sees* a dead worker).  Per-monitor queries route to the
        owning shard and raise :class:`ShardError` when it is down.
        """
        if monitor_id is not None and tenant is None:
            raise ConfigurationError(
                "per-monitor stats need the tenant as well as the monitor id"
            )
        if tenant is not None and monitor_id is not None:
            key, shard = self._shard_for(tenant, monitor_id)
            return self._call(shard, "stats", key[0], key[1])
        shard_stats = self._broadcast("stats", tenant, None, tolerate_dead=True)
        keys = [
            key
            for key in self._registry
            if tenant is None or key[0] == str(tenant)
        ]
        return {
            "n_monitors": len(keys),
            "n_tenants": len({key[0] for key in keys}),
            "n_events": sum(stats["n_events"] for stats in shard_stats),
            "n_drifts": sum(stats["n_drifts"] for stats in shard_stats),
            "n_warnings": sum(stats["n_warnings"] for stats in shard_stats),
            "n_sink_failures": sum(
                stats["n_sink_failures"] for stats in shard_stats
            ),
            "n_shards": self._n_shards,
            "n_alive_shards": self._n_shards - len(self.dead_shards()),
            "n_cleanup_failures": self._n_cleanup_failures,
            "n_transport_fallbacks": self._n_transport_fallbacks,
        }

    @property
    def n_events(self) -> int:
        """Total values observed across all live shards (lifetime)."""
        return sum(
            stats["n_events"]
            for stats in self._broadcast("stats", None, None, tolerate_dead=True)
        )

    def metrics(self) -> Dict[str, Any]:
        """Cluster telemetry: summed counters plus every live shard's detail.

        Dead shards are absent from ``shards`` and from the sums —
        ``n_alive_shards`` reports the degradation.  Each shard entry is the
        worker hub's :meth:`MonitorHub.metrics` dict (ingest rate, flush
        latency percentiles, WAL and sink counters).
        """
        shard_metrics = self._broadcast("metrics", tolerate_dead=True)
        return {
            "n_shards": self._n_shards,
            "n_alive_shards": self._n_shards - len(self.dead_shards()),
            "n_monitors": len(self._registry),
            "n_events": sum(m["n_events"] for m in shard_metrics),
            "ingest_rate": round(sum(m["ingest_rate"] for m in shard_metrics), 3),
            "n_sink_failures": sum(m["n_sink_failures"] for m in shard_metrics),
            "n_wal_replayed": sum(m["n_wal_replayed"] for m in shard_metrics),
            "n_replay_suppressed": sum(
                m["n_replay_suppressed"] for m in shard_metrics
            ),
            "transport": self._transport,
            "n_cleanup_failures": self._n_cleanup_failures,
            "n_transport_fallbacks": self._n_transport_fallbacks,
            "trace": self._tracer.stats(),
            "shards": shard_metrics,
        }

    # --------------------------------------------------------- observability

    @property
    def tracer(self) -> Tracer:
        """The parent-side span recorder (workers own their own tracers)."""
        return self._tracer

    @property
    def journal(self) -> EventJournal:
        """The parent-side operational event journal."""
        return self._journal

    def drain_trace(self) -> List[Dict[str, Any]]:
        """Drain the parent's and every live worker's finished spans.

        One batch covering all processes — ``time.monotonic`` shares an
        epoch across them on Linux, so the spans merge without clock
        translation.  Dead shards contribute nothing (their ring died with
        the worker).
        """
        spans = self._tracer.drain()
        for shard_spans in self._broadcast("trace_drain", tolerate_dead=True):
            spans.extend(shard_spans)
        return spans

    def journal_events(
        self, limit: Optional[int] = None, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Parent and worker journal events merged by timestamp, oldest first.

        ``limit`` keeps the newest events after the merge.  Worker events
        carry whatever ``shard``/context fields their recorder attached;
        dead shards' retained events are gone with the worker (mirror the
        journals to JSONL for a durable record).
        """
        events = self._journal.events(kind=kind)
        for shard_events in self._broadcast(
            "events", None, kind, tolerate_dead=True
        ):
            events.extend(shard_events)
        events.sort(key=lambda event: event.get("ts", 0.0))
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return events

    def alerts_history(
        self,
        tenant: Optional[str] = None,
        monitor_id: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: int = 1000,
    ) -> List[Dict[str, Any]]:
        """Query the WAL-backed alert history across shards.

        A fully-qualified ``(tenant, monitor_id)`` query routes to the owning
        shard; broader queries fan out to every live shard and merge by alert
        timestamp (keeping the newest ``limit`` matches).  Requires
        ``wal_dir``; a worker without one raises
        :class:`~repro.exceptions.ConfigurationError`.  After a reshard a
        moved monitor's *older* records remain in its previous shard's WAL:
        the fan-out query still finds them (until that WAL prunes), the
        owner-routed query covers everything since the move.
        """
        filters = {
            "tenant": tenant,
            "monitor_id": monitor_id,
            "since": since,
            "until": until,
            "limit": limit,
        }
        if tenant is not None and monitor_id is not None:
            key, shard = self._shard_for(tenant, monitor_id)
            return self._call(shard, "alerts_history", filters)
        merged: List[Dict[str, Any]] = []
        for shard_history in self._broadcast(
            "alerts_history", filters, tolerate_dead=True
        ):
            merged.extend(shard_history)
        merged.sort(key=lambda record: (record.get("ts", 0.0), record.get("seq", 0)))
        return merged[-limit:]

    def drain_alerts(self) -> Tuple[List[DriftAlert], int]:
        """Drain every live shard's alert queue; return ``(alerts, n_dropped)``.

        Alerts merge in shard order (emission order within a shard), after
        any alerts parked by a shrinking :meth:`reshard` (drained out of the
        retiring workers before they stopped); ``n_dropped`` is the lifetime
        count of alerts evicted from full shard queues, including retired
        shards'.  Draining is destructive, so a dead shard must never abort
        the call — the surviving shards' alerts are returned (a strict mode
        would throw them away *after* the workers had already drained their
        queues).  A dead shard's undelivered alerts are gone with its
        worker; its detections re-fire during the post-respawn replay.
        """
        alerts: List[DriftAlert] = list(self._parked_alerts)
        self._parked_alerts = []
        n_dropped = self._parked_dropped
        for shard_alerts, shard_dropped in self._broadcast(
            "alerts", tolerate_dead=True
        ):
            alerts.extend(shard_alerts)
            n_dropped += shard_dropped
        return alerts, n_dropped

    # ------------------------------------------------------- checkpointing

    def checkpoint(self) -> Path:
        """Checkpoint every shard, then write the cluster manifest.

        Shards checkpoint concurrently (their own atomic
        ``hub-checkpoint.json``); the manifest records the shard count, the
        slot table, each shard's composition hash and event count, and a
        cluster hash over the ordered shard hashes.  The manifest is
        advisory metadata written *after* the shard files — the shard
        checkpoints alone are sufficient to resume, and a crash between the
        two leaves a stale-but-harmless manifest (the layout fields are
        what resume validates, and they only change through :meth:`reshard`,
        which orders its writes explicitly).
        """
        if self._checkpoint_dir is None:
            raise ConfigurationError(
                "no checkpoint directory configured; pass one to ShardedHub()"
            )
        return self._write_manifest(self._broadcast("checkpoint"))

    def _write_manifest(
        self,
        reports: List[Dict[str, Any]],
        n_shards: Optional[int] = None,
        assignment: Optional[Sequence[int]] = None,
        prev_assignment: Optional[Sequence[int]] = None,
        pending: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Atomically record the cluster composition and slot table.

        Also called at construction, so layout validation works for
        clusters that only ever auto-checkpoint.  ``reports`` must align
        with shard indices 0..n-1.  ``pending`` records a reshard's durable
        intent before its commit point; ``prev_assignment`` names the
        pre-commit table until the sources' stale copies are cleaned up.
        """
        from repro.experiments.orchestrator import grid_config_hash

        n = self._n_shards if n_shards is None else n_shards
        table = list(self._assignment if assignment is None else assignment)
        manifest = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "n_shards": n,
            "n_slots": N_SLOTS,
            "assignment": table,
            "prev_assignment": (
                list(prev_assignment) if prev_assignment is not None else None
            ),
            "pending": (
                {
                    "n_shards": int(pending["n_shards"]),
                    "assignment": list(pending["assignment"]),
                }
                if pending is not None
                else None
            ),
            "cluster_hash": grid_config_hash(
                {"shards": [report["config_hash"] for report in reports]}
            ),
            "n_events": sum(report["n_events"] for report in reports),
            "shards": [
                {
                    "index": index,
                    "dir": _shard_dirname(index),
                    "config_hash": report["config_hash"],
                    "n_events": report["n_events"],
                    "n_monitors": report["n_monitors"],
                    "wal": report.get("wal"),
                }
                for index, report in enumerate(reports)
            ],
        }
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        return atomic_write_json(self._checkpoint_dir / MANIFEST_FILENAME, manifest)

    # ------------------------------------------------------------ resharding

    def _reshard_stage(self, stage: str) -> None:
        self._journal.record("reshard_stage", stage=stage)
        hook = self._reshard_test_hook
        if hook is not None:
            hook(stage)

    def _note_cleanup_failure(self, what: str, **fields: Any) -> None:
        """Count and journal one best-effort cleanup step that failed."""
        self._n_cleanup_failures += 1
        self._journal.record("cleanup_failure", what=what, **fields)

    def reshard(self, n_shards: int) -> Dict[str, Any]:
        """Live-migrate the cluster to ``n_shards`` workers; return a summary.

        The slot table is rebalanced with minimal movement (only slots that
        must change owner do), and the moving slots' monitors are handed
        source → target through the bit-exact snapshot contract, alert
        sequence counters included — detections and exactly-once alert
        delivery continue as if the cluster had never changed shape.  The
        parent is the cluster's only writer, so the quiesce is implicit: no
        ingest runs while this method does.

        Crash safety (with a ``checkpoint_dir``) is a write-ahead protocol
        on the manifest:

        1. baseline checkpoint of every shard;
        2. manifest gains a ``pending`` record (durable intent; the old
           table stays authoritative);
        3. moving monitors are exported → imported and the *target* shards
           checkpoint (copies exist on disk under both layouts);
        4. **commit**: the manifest is atomically rewritten with the new
           table (``prev_assignment`` names the old one);
        5. cleanup: sources forget the moved monitors, retiring workers
           stop (their queued alerts are parked for :meth:`drain_alerts`),
           every shard checkpoints, and the manifest drops
           ``prev_assignment``.

        A crash before step 4 resumes under the old layout (stray copies on
        the intended targets are recognised via ``pending`` and dropped); a
        crash after it resumes under the new layout (stale source copies
        are recognised via ``prev_assignment`` and dropped).  A worker
        death *during* the protocol aborts it the same way: copies roll
        back, freshly spawned workers stop, the intent record is cleared,
        and the :class:`ShardError` propagates — ``respawn_dead_shards()``
        then repairs the cluster and the reshard can be retried.

        Fails fast on a degraded cluster (``respawn_dead_shards()`` first);
        requires every monitor's owner to be live because their state must
        be read to move.
        """
        if self._closed:
            raise ShardError("sharded hub is closed")
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if n_shards > N_SLOTS:
            raise ConfigurationError(
                f"n_shards must be <= {N_SLOTS} (the slot space), got {n_shards}"
            )
        dead = self.dead_shards()
        if dead:
            raise ShardError(
                f"cannot reshard with dead shards {dead}; "
                "respawn_dead_shards() first"
            )
        old_n = self._n_shards
        old_assignment = list(self._assignment)
        if n_shards == old_n:
            return {
                "n_shards": old_n,
                "n_slots_moved": 0,
                "n_monitors_moved": 0,
            }
        new_assignment = _rebalance_assignment(old_assignment, n_shards)
        n_slots_moved = sum(
            1
            for old, new in zip(old_assignment, new_assignment)
            if old != new
        )
        # Plan the monitor moves from the live registry.
        moves: Dict[Tuple[int, int], List[_MonitorKey]] = {}
        for key, shard in self._registry.items():
            target = new_assignment[route_slot(*key)]
            if target != shard:
                moves.setdefault((shard, target), []).append(key)
        n_monitors_moved = sum(len(keys) for keys in moves.values())
        logger.info(
            "resharding %d -> %d shards: %d slots, %d monitors moving",
            old_n,
            n_shards,
            n_slots_moved,
            n_monitors_moved,
        )

        # 1. Quiesce + baseline: durable pre-reshard state on every shard.
        baseline_reports: Optional[List[Dict[str, Any]]] = None
        if self._checkpoint_dir is not None:
            baseline_reports = self._broadcast("checkpoint")
        self._reshard_stage("baseline")

        spawned: List[int] = []
        imported: Dict[int, List[_MonitorKey]] = {}
        try:
            # 2. Grow: spawn the new workers with fresh hubs.  Checkpoints
            #    under their directories are leftovers of an aborted grow —
            #    never part of a committed layout — and are ignored.
            for index in range(old_n, n_shards):
                self._processes.append(None)
                self._conns.append(None)
                self._spawn(index, resume=False)
                spawned.append(index)
            self._reshard_stage("spawned")
            # 3. Durable intent: the old table stays authoritative.
            if baseline_reports is not None:
                self._write_manifest(
                    baseline_reports,
                    pending={"n_shards": n_shards, "assignment": new_assignment},
                )
            self._reshard_stage("intent")
            # 4. Copy the moving monitors to their new owners.
            for (source, target), keys in sorted(moves.items()):
                records = self._call(source, "export_monitors", keys)
                self._reshard_stage("exported")
                self._call(target, "import_monitors", records)
                imported.setdefault(target, []).extend(keys)
            self._reshard_stage("imported")
            # 5. Make the copies durable before the commit point, and gather
            #    the commit manifest's per-shard reports.
            reports: Optional[List[Dict[str, Any]]] = None
            if self._checkpoint_dir is not None:
                targets = {target for _, target in moves} | set(spawned)
                reports = []
                for index in range(n_shards):
                    reports.append(
                        self._call(
                            index,
                            "checkpoint" if index in targets else "describe",
                        )
                    )
            self._reshard_stage("copied")
            # 6. COMMIT: the manifest atomically switches the layout.
            if reports is not None:
                self._write_manifest(
                    reports,
                    n_shards=n_shards,
                    assignment=new_assignment,
                    prev_assignment=old_assignment,
                )
        except BaseException:
            self._abort_reshard(spawned, imported, old_n, baseline_reports)
            raise
        self._n_shards = n_shards
        self._assignment = list(new_assignment)
        self._registry = {
            key: new_assignment[route_slot(*key)] for key in self._registry
        }
        self._reshard_stage("committed")

        # 7. Cleanup.  The reshard is already committed: failures here leave
        #    recoverable duplicates (prev_assignment explains them), so they
        #    surface as ShardError *after* the layout change took effect.
        cleanup_error: Optional[BaseException] = None
        for (source, target), keys in sorted(moves.items()):
            if source >= n_shards:
                continue  # the whole worker retires below
            try:
                self._call(source, "forget_monitors", keys)
            except Exception as exc:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; the first failure is re-raised as ShardError after the remaining cleanup steps run
                self._note_cleanup_failure("reshard_forget", shard=source)
                logger.warning("reshard cleanup: shard %d forget failed", source)
                cleanup_error = cleanup_error or exc
        for index in range(n_shards, old_n):
            try:
                parked, dropped = self._call(index, "alerts")
                self._parked_alerts.extend(parked)
                self._parked_dropped += dropped
            except Exception as exc:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; the first failure is re-raised as ShardError after the remaining cleanup steps run
                self._note_cleanup_failure("retiring_shard_drain", shard=index)
                logger.warning(
                    "reshard cleanup: could not drain retiring shard %d", index
                )
                cleanup_error = cleanup_error or exc
            try:
                self._stop_worker(self._processes[index], self._conns[index])
            except Exception as exc:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; one wedged retiring worker must not keep the remaining shards from stopping or their shm from releasing
                self._note_cleanup_failure("retiring_shard_stop", shard=index)
                logger.warning(
                    "reshard cleanup: could not stop retiring shard %d", index
                )
                cleanup_error = cleanup_error or exc
        del self._processes[n_shards:]
        del self._conns[n_shards:]
        for index in range(n_shards, old_n):
            try:
                self._release_shm_block(index)
            except Exception as exc:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; the remaining retiring segments must still be released
                self._note_cleanup_failure("retiring_shard_shm", shard=index)
                cleanup_error = cleanup_error or exc
        self._reshard_stage("cleanup")
        if self._checkpoint_dir is not None and cleanup_error is None:
            try:
                self._write_manifest(self._broadcast("checkpoint"))
            except Exception as exc:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; re-raised as ShardError below with a recovery hint
                self._note_cleanup_failure("post_reshard_checkpoint")
                cleanup_error = exc
        if cleanup_error is not None:
            raise ShardError(
                f"reshard to {n_shards} shards committed, but its cleanup "
                f"failed ({cleanup_error!r}); respawn_dead_shards() finishes "
                "the recovery"
            ) from cleanup_error
        return {
            "n_shards": n_shards,
            "n_slots_moved": n_slots_moved,
            "n_monitors_moved": n_monitors_moved,
        }

    def _abort_reshard(
        self,
        spawned: List[int],
        imported: Dict[int, List[_MonitorKey]],
        old_n: int,
        baseline_reports: Optional[List[Dict[str, Any]]],
    ) -> None:
        """Roll a failed (pre-commit) reshard back to the old layout.

        The old table never stopped being authoritative — this only drops
        the copies, retires the workers spawned for the abandoned layout,
        and clears the durable intent record.  Best-effort by design: a
        dead worker here is exactly what aborted the reshard, and whatever
        cannot be cleaned up live is recognised on resume via ``pending``.
        """
        for target, keys in imported.items():
            if target >= old_n:
                continue  # the whole worker is discarded below
            try:
                self._call(target, "forget_monitors", keys)
            except Exception:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; best-effort rollback, the old layout never stopped being authoritative
                self._note_cleanup_failure("abort_rollback_imports", shard=target)
                logger.warning(
                    "reshard abort: could not roll back imports on shard %d",
                    target,
                )
        for index in sorted(spawned, reverse=True):
            try:
                self._stop_worker(self._processes[index], self._conns[index])
            except Exception:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; the rollback must still retire the other spawned workers and restore the old layout lists
                self._note_cleanup_failure("abort_retire_worker", shard=index)
                logger.warning(
                    "reshard abort: could not stop spawned worker %d", index
                )
            # The list surgery is not best-effort: the old layout's lists
            # must shrink back even when stopping one worker failed.
            del self._processes[index]
            del self._conns[index]
            try:
                self._release_shm_block(index)
            except Exception:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; the rollback must still release the other spawned workers' segments
                self._note_cleanup_failure("abort_release_shm", shard=index)
        if baseline_reports is not None:
            try:
                self._write_manifest(baseline_reports)
            except Exception:  # repro: allow(broad-except) -- counted in n_cleanup_failures and journaled by _note_cleanup_failure; a lingering intent record is recognised and finished on the next resume
                self._note_cleanup_failure("abort_clear_intent")
                logger.warning(
                    "reshard abort: could not clear the manifest intent record"
                )

    # ------------------------------------------------------ failure handling

    def dead_shards(self) -> List[int]:
        """Indices of shards whose worker process is no longer alive."""
        return [
            index
            for index, process in enumerate(self._processes)
            if process is not None and not process.is_alive()
        ]

    def respawn_shard(self, index: int) -> None:
        """Restart a dead shard worker, resuming from its own checkpoint.

        Everything that shard observed after its last checkpoint is gone —
        per-monitor ``n_seen`` (via :meth:`stats`) tells producers where to
        resume replay.  Monitors registered after the last checkpoint must be
        re-registered (``exist_ok=True`` is idempotent for the survivors).
        """
        if self._closed:
            # Spawning after close() would orphan a live worker nothing
            # will ever stop (close() early-returns on re-entry).
            raise ShardError("sharded hub is closed")
        if not 0 <= index < self._n_shards:
            raise ConfigurationError(f"no shard {index} in a {self._n_shards}-shard hub")
        process = self._processes[index]
        if process is not None and process.is_alive():
            raise ConfigurationError(
                f"shard {index} worker is still alive; it can only be "
                "respawned after it died"
            )
        if process is not None:
            process.join(timeout=5)
        conn = self._conns[index]
        if conn is not None:
            conn.close()
        # The retiring worker may have died mid-read; never reuse its block.
        self._release_shm_block(index)
        logger.warning("respawning shard %d from its checkpoint", index)
        self._spawn(index, resume=True)
        self._adopt_shard_monitors(index)
        self._journal.record("shard_respawn", shard=index)

    def respawn_dead_shards(self) -> List[int]:
        """Respawn every dead shard; return the indices that were restarted."""
        dead = self.dead_shards()
        for index in dead:
            self.respawn_shard(index)
        return dead

    def worker_pid(self, index: int) -> Optional[int]:
        """PID of a shard's worker process (``None`` before spawn)."""
        process = self._processes[index]
        return process.pid if process is not None else None
