"""Detector snapshot serialization for the serving layer.

:meth:`repro.core.base.DriftDetector.state_dict` produces a versioned dict of
plain Python values that resumes a detector *bit-exactly* — but the payload
may contain non-finite floats (the ``inf`` minima of the DDM family), which
strict JSON cannot represent.  This module provides:

* :func:`sanitize` / :func:`desanitize` — lossless transforms between raw
  state dicts and strictly-JSON-safe payloads (non-finite floats become
  ``{"$float": "Infinity"}`` sentinels);
* :func:`snapshot_detector` / :func:`restore_detector` — the one-call
  round-trip used by :class:`repro.serving.hub.MonitorHub`: serialize any
  registered detector to a JSON-safe dict, and rebuild an identically
  configured, identically positioned instance from one;
* :func:`detector_registry` — name → class lookup over every exported
  detector (class names plus upper-case aliases such as ``"OPTWIN"``), so
  wire protocols and checkpoints refer to detectors by stable names instead
  of pickled objects.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Type, Union

from repro.core.base import SNAPSHOT_SCHEMA_VERSION, DriftDetector
from repro.detectors import exported_detector_classes
from repro.exceptions import ConfigurationError, SnapshotError

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "sanitize",
    "desanitize",
    "snapshot_detector",
    "restore_detector",
    "detector_registry",
    "resolve_detector_class",
    "build_detector",
    "snapshot_json",
    "atomic_write_json",
]

#: Sentinel key marking an encoded non-finite float.
_FLOAT_KEY = "$float"

_ENCODE = {math.inf: "Infinity", -math.inf: "-Infinity"}


def sanitize(value: Any) -> Any:
    """Return a strictly-JSON-safe copy of a snapshot payload.

    Finite floats, ints, bools, strings, and ``None`` pass through; ``inf``,
    ``-inf``, and ``nan`` become ``{"$float": ...}`` sentinel objects; dicts
    and lists are walked recursively.  The transform is lossless under
    :func:`desanitize`.
    """
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {_FLOAT_KEY: "NaN"}
        return {_FLOAT_KEY: _ENCODE[value]}
    if isinstance(value, dict):
        return {key: sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    return value


def desanitize(value: Any) -> Any:
    """Invert :func:`sanitize`, restoring non-finite float sentinels."""
    if isinstance(value, dict):
        if set(value.keys()) == {_FLOAT_KEY}:
            token = value[_FLOAT_KEY]
            if token == "Infinity":
                return math.inf
            if token == "-Infinity":
                return -math.inf
            if token == "NaN":
                return math.nan
            raise SnapshotError(f"unknown float sentinel {token!r}")
        return {key: desanitize(item) for key, item in value.items()}
    if isinstance(value, list):
        return [desanitize(item) for item in value]
    return value


def detector_registry() -> Dict[str, Type[DriftDetector]]:
    """Name → class mapping over every exported detector.

    Keys are the exact class names (``"Optwin"``, ``"HddmA"``, ...) plus
    their upper-case forms (``"OPTWIN"``, ``"ADWIN"``, ...), which is what
    the serving wire protocol and checkpoint files use.
    """
    registry: Dict[str, Type[DriftDetector]] = {}
    for cls in exported_detector_classes():
        registry[cls.__name__] = cls
        registry[cls.__name__.upper()] = cls
    return registry


def resolve_detector_class(name: str) -> Type[DriftDetector]:
    """Look up a detector class by registry name (case-tolerant)."""
    registry = detector_registry()
    cls = registry.get(name) or registry.get(str(name).upper())
    if cls is None:
        known = sorted({klass.__name__ for klass in registry.values()})
        raise ConfigurationError(
            f"unknown detector {name!r}; known detectors: {', '.join(known)}"
        )
    return cls


def build_detector(
    name: str, params: Optional[Mapping[str, Any]] = None
) -> DriftDetector:
    """Construct a fresh detector from a registry name and constructor kwargs."""
    cls = resolve_detector_class(name)
    try:
        return cls(**dict(params or {}))
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid parameters for {cls.__name__}: {exc}"
        ) from exc


def snapshot_detector(detector: DriftDetector) -> Dict[str, Any]:
    """Serialize a detector to a strictly-JSON-safe snapshot dict."""
    return sanitize(detector.state_dict())


def restore_detector(snapshot: Mapping[str, Any]) -> DriftDetector:
    """Rebuild a detector from a :func:`snapshot_detector` payload.

    The detector class is resolved through the registry, constructed from the
    snapshot's ``config`` section, and positioned with ``load_state_dict`` —
    the result produces detections bit-identical to the snapshotted instance.
    """
    payload = desanitize(dict(snapshot))
    version = payload.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot schema version {version!r} is not supported "
            f"(expected {SNAPSHOT_SCHEMA_VERSION})"
        )
    name = payload.get("detector")
    if not isinstance(name, str):
        raise SnapshotError("snapshot is missing its detector class name")
    cls = resolve_detector_class(name)
    # Tolerate registry aliases ("OPTWIN") in hand-written payloads; the
    # class-name check inside load_state_dict wants the exact name.
    payload["detector"] = cls.__name__
    try:
        detector = cls.from_config_dict(payload.get("config", {}))
    except (TypeError, ConfigurationError) as exc:
        raise SnapshotError(f"snapshot config cannot rebuild {name}: {exc}") from exc
    detector.load_state_dict(payload)
    return detector


def atomic_write_json(path: Union[str, Path], document: Any) -> Path:
    """Write ``document`` as strict JSON to ``path`` atomically.

    The write goes to a temp file in the target directory, is flushed and
    ``fsync``-ed, then moved into place with ``os.replace``, and finally the
    *containing directory* is fsync'd — without that last step the rename
    itself can be lost in a power failure, resurrecting the previous file
    (or, for a first write, no file at all).  A crash mid-write never
    corrupts a previous file at ``path``.  Shared by the hub checkpoint,
    the sharded cluster manifest, and the WAL meta document.
    """
    from repro.serving.wal import fsync_directory

    path = Path(path)
    handle = tempfile.NamedTemporaryFile(  # repro: allow(durability) -- this IS atomic_write_json: the temp file is fsynced below, os.replace()d into place, and the directory fsync makes the rename itself durable
        "w",
        dir=str(path.parent),
        prefix=path.name + ".",
        suffix=".tmp",
        delete=False,
        encoding="utf-8",
    )
    try:
        with handle:
            json.dump(document, handle, sort_keys=True, allow_nan=False)  # repro: allow(durability) -- writes the temp file inside the atomic_write_json protocol; fsync + rename + directory fsync follow
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)
    return path


def snapshot_json(detector: DriftDetector) -> str:
    """Serialize a detector to canonical JSON text (stable key order)."""
    return json.dumps(
        snapshot_detector(detector),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
