"""Multi-tenant drift-monitoring serving layer.

This subsystem turns the repository's offline detectors into long-lived,
resumable monitors — the "live ML monitoring loop" deployment shape the paper
positions drift detectors for:

* :mod:`repro.serving.snapshot` — JSON-safe, bit-exact detector
  serialization (``snapshot_detector`` / ``restore_detector``) on top of
  :meth:`repro.core.base.DriftDetector.state_dict`;
* :mod:`repro.serving.hub` — :class:`MonitorHub`, a registry of
  ``(tenant, monitor_id) → detector`` entries with batched ingestion through
  the vectorised ``update_batch`` fast paths and atomic whole-hub
  checkpointing;
* :mod:`repro.serving.sinks` — pluggable alert sinks (callback, in-memory
  queue, JSON-lines audit log, retrying webhook) fired on warning/drift
  transitions;
* :mod:`repro.serving.wal` — :class:`AlertWal`, the segmented, CRC-checked,
  fsync'd write-ahead log behind the durable alert bus: alerts are logged
  before sinks see them, a restarted hub replays the post-checkpoint tail
  exactly once, and the retained tail serves the ``alerts_history`` op;
* :mod:`repro.serving.metrics` — the latency/rate instruments behind the
  ``metrics`` op;
* :mod:`repro.serving.server` — an asyncio JSON-lines TCP server
  (``python -m repro.serving``) so external processes can stream error
  values at high throughput;
* :mod:`repro.serving.sharded` — :class:`ShardedHub`, the same registry
  partitioned across N shared-nothing worker processes (slot-based BLAKE2b
  routing over a manifest-carried assignment table, live ``reshard(n)``,
  shared-memory ingest fan-out, per-shard checkpoints plus a cluster
  manifest, kill-and-respawn recovery) for multi-core scale-out
  (``python -m repro.serving --shards N``).

See ``docs/serving.md`` for the hub lifecycle, the checkpoint format, the
sharding model, and the wire protocol, and ``examples/live_monitoring.py``
for the daemon-style usage pattern.
"""

# repro: allow-file(deprecated-symbol) -- route_shard is re-exported here for external backwards compatibility only; internal code routes through route_slot and the manifest-carried slot table (PR 7)

from repro.serving.hub import (
    CHECKPOINT_FILENAME,
    HUB_SCHEMA_VERSION,
    MonitorHub,
    ObserveResult,
)
from repro.serving.server import ServingServer
from repro.serving.sharded import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA_VERSION,
    N_SLOTS,
    ShardedHub,
    default_slot_assignment,
    route_shard,
    route_slot,
)
from repro.serving.metrics import LatencyWindow, RateMeter
from repro.serving.sinks import (
    AlertSink,
    CallbackSink,
    DriftAlert,
    JsonlAuditSink,
    QueueSink,
    WebhookSink,
)
from repro.serving.wal import AlertWal, WAL_SCHEMA_VERSION, read_wal_head
from repro.serving.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    build_detector,
    detector_registry,
    restore_detector,
    snapshot_detector,
    snapshot_json,
)

__all__ = [
    "MonitorHub",
    "ObserveResult",
    "ServingServer",
    "ShardedHub",
    "route_shard",
    "route_slot",
    "default_slot_assignment",
    "N_SLOTS",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "AlertSink",
    "CallbackSink",
    "QueueSink",
    "JsonlAuditSink",
    "WebhookSink",
    "DriftAlert",
    "AlertWal",
    "read_wal_head",
    "WAL_SCHEMA_VERSION",
    "LatencyWindow",
    "RateMeter",
    "snapshot_detector",
    "restore_detector",
    "snapshot_json",
    "build_detector",
    "detector_registry",
    "SNAPSHOT_SCHEMA_VERSION",
    "HUB_SCHEMA_VERSION",
    "CHECKPOINT_FILENAME",
]
