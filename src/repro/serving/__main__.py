"""``python -m repro.serving`` — run the drift-monitoring TCP server.

Example
-------
Start a server that checkpoints every 10 000 observed values and audits
alerts to a JSON-lines file::

    python -m repro.serving --port 7737 \
        --checkpoint-dir ./checkpoints --checkpoint-every 10000 \
        --audit-log ./alerts.jsonl

On startup the server resumes every monitor from the checkpoint directory if
a checkpoint exists, prints a ``READY host=... port=...`` line to stdout (use
``--port 0`` for an ephemeral port and parse the line), and on SIGINT/SIGTERM
writes a final checkpoint before exiting.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.serving.hub import MonitorHub
from repro.serving.server import ServingServer
from repro.serving.sinks import JsonlAuditSink


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve drift monitors over a JSON-lines TCP protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7737, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for hub checkpoints (resumed from on startup)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint automatically after every N observed values",
    )
    parser.add_argument(
        "--audit-log",
        default=None,
        metavar="PATH",
        help="append drift/warning alerts to this JSON-lines file",
    )
    return parser


async def run(args: argparse.Namespace) -> int:
    sinks = []
    if args.audit_log:
        sinks.append(JsonlAuditSink(args.audit_log))
    hub = MonitorHub(
        checkpoint_dir=args.checkpoint_dir,
        sinks=sinks,
        checkpoint_every=args.checkpoint_every,
    )
    server = ServingServer(hub, host=args.host, port=args.port)
    await server.start()

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)

    print(
        f"READY host={args.host} port={server.port} "
        f"monitors={len(hub)} events={hub.n_events}",
        flush=True,
    )
    serve_task = asyncio.ensure_future(server.serve_forever())
    try:
        await stop.wait()
    finally:
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        await server.stop()
        if args.checkpoint_dir:
            path = hub.checkpoint()
            print(f"CHECKPOINT {path}", flush=True)
        hub.close()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(run(args))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130


if __name__ == "__main__":
    sys.exit(main())
