"""``python -m repro.serving`` — run the drift-monitoring TCP server.

Example
-------
Start a server that checkpoints every 10 000 observed values and audits
alerts to a JSON-lines file::

    python -m repro.serving --port 7737 \
        --checkpoint-dir ./checkpoints --checkpoint-every 10000 \
        --audit-log ./alerts.jsonl

With ``--shards N`` the ``(tenant, monitor_id)`` keyspace is partitioned
across N worker processes (a :class:`~repro.serving.sharded.ShardedHub`):
each shard checkpoints into its own ``shard-NN/`` directory under
``--checkpoint-dir``, alerts audit to ``<audit-log>.shard-NN`` (one file per
shard), and ``--checkpoint-every`` counts values per shard.

On startup the server resumes every monitor from the checkpoint directory if
a checkpoint exists, prints a ``READY host=... port=...`` line to stdout (use
``--port 0`` for an ephemeral port and parse the line), and on SIGINT/SIGTERM
writes a final checkpoint before exiting.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.httpd import MetricsServer
from repro.obs.journal import EventJournal
from repro.obs.prom import hub_exposition
from repro.obs.trace import Tracer, write_chrome_trace
from repro.serving.hub import MonitorHub
from repro.serving.server import ServingServer
from repro.serving.sharded import ShardedHub
from repro.serving.sinks import JsonlAuditSink, WebhookSink


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve drift monitors over a JSON-lines TCP protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7737, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="partition monitors across N worker processes "
        "(0 = single-process hub)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for hub checkpoints (resumed from on startup); with "
        "--shards, each shard owns a shard-NN/ subdirectory",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint automatically after every N observed values "
        "(per shard when sharded)",
    )
    parser.add_argument(
        "--audit-log",
        default=None,
        metavar="PATH",
        help="append drift/warning alerts to this JSON-lines file "
        "(with --shards: one file per shard, suffixed .shard-NN)",
    )
    parser.add_argument(
        "--wal-dir",
        default=None,
        metavar="PATH",
        help="directory of the durable alert write-ahead log (with --shards: "
        "one shard-NN/ subdirectory per shard); enables crash-safe alert "
        "delivery, the alerts_history op, and replay-after-restore",
    )
    parser.add_argument(
        "--wal-fsync",
        choices=("batch", "always", "off"),
        default="batch",
        help="WAL durability mode: fsync once per ingest flush (batch, "
        "default), per record (always), or never (off)",
    )
    parser.add_argument(
        "--webhook",
        default=None,
        metavar="URL",
        help="POST every alert to this URL (bounded retries with backoff, "
        "circuit breaker; a down endpoint never blocks ingest)",
    )
    parser.add_argument(
        "--webhook-dead-letter",
        default=None,
        metavar="PATH",
        help="JSON-lines file for alerts the webhook could not deliver "
        "(with --shards: one file per shard, suffixed .shard-NN)",
    )
    parser.add_argument(
        "--transport",
        choices=("shm", "pickle"),
        default="shm",
        help="with --shards: ingest fan-out transport — 'shm' stages float "
        "batches in per-shard shared memory (zero-copy in the workers), "
        "'pickle' sends them through the worker pipes",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --shards: kill a worker that takes longer than this to "
        "reply (a hung worker counts as dead and can be respawned); the "
        "server defaults to 60s so one wedged worker cannot freeze every "
        "connection forever; 0 waits forever",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the Prometheus text exposition on GET /metrics at this "
        "port (0 = ephemeral; a METRICS line on stdout reports the bound "
        "port); sharded clusters merge per-shard series under shard labels",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="sample this fraction of ingest requests into the tracer "
        "(0 disables tracing, 1 traces everything; sharded fan-outs carry "
        "the trace into every worker)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write drained traces as Chrome trace_event JSON files into "
        "this directory (the 'trace' wire op dumps and clears; a final dump "
        "happens at shutdown) — open them at https://ui.perfetto.dev",
    )
    parser.add_argument(
        "--journal-jsonl",
        default=None,
        metavar="PATH",
        help="mirror the hub's operational event journal (shard respawns, "
        "reshard stages, WAL rotations, slow flushes, ...) to this "
        "JSON-lines file",
    )
    return parser


def build_hub(args: argparse.Namespace) -> Union[MonitorHub, ShardedHub]:
    """Construct the hub the server fronts (sharded when ``--shards`` > 0).

    Called *before* the event loop starts so shard workers never fork from a
    process that already owns a running loop.
    """
    tracer = Tracer(sample_rate=args.trace_sample, process="hub")
    journal = EventJournal(capacity=512, jsonl_path=args.journal_jsonl)
    if args.shards > 0:
        # Hub ops serialize through the server's single dispatch thread, so
        # an unbounded wait on one hung worker would stall every request
        # behind it; default to a generous timeout (0 opts back into
        # waiting forever).
        timeout = args.request_timeout
        if timeout is None:
            timeout = 60.0
        elif timeout <= 0:
            timeout = None
        return ShardedHub(
            args.shards,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            audit_log=args.audit_log,
            wal_dir=args.wal_dir,
            wal_fsync=args.wal_fsync,
            webhook=args.webhook,
            webhook_dead_letter=args.webhook_dead_letter,
            request_timeout=timeout,
            transport=args.transport,
            tracer=tracer,
            journal=journal,
        )
    sinks = []
    if args.audit_log:
        sinks.append(JsonlAuditSink(args.audit_log))
    if args.webhook:
        sinks.append(
            WebhookSink(
                args.webhook,
                dead_letter_path=args.webhook_dead_letter,
                on_breaker_open=lambda info: journal.record(
                    "webhook_breaker_open", **info
                ),
            )
        )
    # The server attaches its alert queue after construction, so WAL replay
    # is deferred (wal_auto_replay=False); ServingServer triggers it once
    # every sink is in place.
    return MonitorHub(
        checkpoint_dir=args.checkpoint_dir,
        sinks=sinks,
        checkpoint_every=args.checkpoint_every,
        wal_dir=args.wal_dir,
        wal_fsync=args.wal_fsync,
        wal_auto_replay=False,
        tracer=tracer,
        journal=journal,
    )


async def run(args: argparse.Namespace, hub: Union[MonitorHub, ShardedHub]) -> int:
    server = ServingServer(hub, host=args.host, port=args.port, trace_dir=args.trace_dir)
    await server.start()

    metrics_server: Optional[MetricsServer] = None
    if args.metrics_port is not None:
        metrics_server = MetricsServer(
            lambda: hub_exposition(hub), host=args.host, port=args.metrics_port
        )
        await metrics_server.start()

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)

    print(
        f"READY host={args.host} port={server.port} "
        f"shards={max(args.shards, 0)} "
        f"monitors={len(hub)} events={hub.n_events}",
        flush=True,
    )
    if metrics_server is not None:
        print(
            f"METRICS host={args.host} port={metrics_server.port}",
            flush=True,
        )
    serve_task = asyncio.ensure_future(server.serve_forever())
    try:
        await stop.wait()
    finally:
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        await server.stop()
        if metrics_server is not None:
            await metrics_server.stop()
        if args.trace_dir:
            # Flush whatever the tracer still holds so a sampled session
            # always leaves at least one loadable dump behind.
            spans = hub.drain_trace()
            if spans:
                final = Path(args.trace_dir) / "trace-final.json"
                print(f"TRACE {write_chrome_trace(final, spans)}", flush=True)
        if args.checkpoint_dir:
            try:
                path = hub.checkpoint()  # repro: allow(async-blocking) -- shutdown path: server.stop() already quiesced the dispatch thread and closed the listener, so no connection is waiting on this loop while the final checkpoint writes
                print(f"CHECKPOINT {path}", flush=True)
            except Exception as exc:  # repro: allow(broad-except) -- shutdown path: the failure is surfaced as CHECKPOINT-FAILED on stderr and the last successful checkpoint is still on disk; crashing here would skip closing healthy shards and sinks
                # A dead worker, a full disk, a corrupt directory — whatever
                # the cause, crashing out of shutdown would also skip
                # closing the healthy shards and the audit sinks.  The last
                # successful checkpoint is still on disk.
                print(f"CHECKPOINT-FAILED {exc}", file=sys.stderr, flush=True)
        hub.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    hub = build_hub(args)
    try:
        return asyncio.run(run(args, hub))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130


if __name__ == "__main__":
    sys.exit(main())
