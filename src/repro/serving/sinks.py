"""Pluggable alert sinks for the drift-monitoring hub.

A sink receives :class:`DriftAlert` events whenever a hosted monitor enters
its warning zone or flags a drift.  Three implementations cover the common
shapes of a production monitoring loop (the ProfitForge-style daemon pattern:
detector fires → notification goes out):

* :class:`CallbackSink` — invoke a user callable per alert;
* :class:`QueueSink` — buffer alerts in memory for polling consumers (the
  TCP server drains one of these for its ``alerts`` op);
* :class:`JsonlAuditSink` — append one JSON object per alert to an audit log.

Sinks should never raise out of :meth:`AlertSink.emit` — and the hub
*enforces* the contract: a raising sink is caught per delivery, counted in
``MonitorHub.stats()["n_sink_failures"]``, and never aborts an ``observe``/
``ingest`` flush, because the hub treats a failing sink as a reporting
problem, not a monitoring problem, and keeps the detector state
authoritative.
"""

from __future__ import annotations

import abc
import json
from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Deque, Dict, List, Optional

__all__ = [
    "DriftAlert",
    "AlertSink",
    "CallbackSink",
    "QueueSink",
    "JsonlAuditSink",
]


@dataclass(frozen=True)
class DriftAlert:
    """One warning/drift transition of a hosted monitor.

    Attributes
    ----------
    tenant:
        Tenant namespace of the monitor that fired.
    monitor_id:
        Monitor identifier within the tenant.
    kind:
        ``"drift"`` for a flagged drift, ``"warning"`` for entering the
        warning zone.
    position:
        Global 0-based index of the triggering element within the monitor's
        lifetime stream (i.e. ``n_seen - 1`` of the element that fired).
    detector:
        Class name of the underlying detector.
    n_drifts:
        Lifetime drift count of the monitor *including* this event (for
        drift alerts).
    """

    tenant: str
    monitor_id: str
    kind: str
    position: int
    detector: str
    n_drifts: int

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the audit log and the wire protocol."""
        return asdict(self)


class AlertSink(abc.ABC):
    """Receiver of :class:`DriftAlert` events."""

    @abc.abstractmethod
    def emit(self, alert: DriftAlert) -> None:
        """Deliver one alert."""

    def close(self) -> None:
        """Release any resources held by the sink (default: nothing)."""


class CallbackSink(AlertSink):
    """Invoke ``callback(alert)`` for every alert."""

    def __init__(self, callback: Callable[[DriftAlert], None]) -> None:
        self._callback = callback

    def emit(self, alert: DriftAlert) -> None:
        self._callback(alert)


class QueueSink(AlertSink):
    """Buffer alerts in memory, oldest first, for polling consumers.

    With a ``maxlen``, a full queue evicts the *oldest* alert on every new
    ``emit``.  Eviction is never silent: each dropped alert increments
    :attr:`n_dropped`, so a consumer that polls too slowly can tell alerts
    were lost (the TCP server reports the counter in its ``alerts`` response).
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        self._alerts: Deque[DriftAlert] = deque(maxlen=maxlen)
        self._n_dropped = 0

    def emit(self, alert: DriftAlert) -> None:
        if (
            self._alerts.maxlen is not None
            and len(self._alerts) == self._alerts.maxlen
        ):
            self._n_dropped += 1
        self._alerts.append(alert)

    def __len__(self) -> int:
        return len(self._alerts)

    @property
    def n_dropped(self) -> int:
        """Lifetime count of alerts evicted because the queue was full."""
        return self._n_dropped

    def drain(self) -> List[DriftAlert]:
        """Return and clear all buffered alerts (:attr:`n_dropped` is kept)."""
        drained = list(self._alerts)
        self._alerts.clear()
        return drained


class JsonlAuditSink(AlertSink):
    """Append one JSON object per alert to a JSON-lines audit log.

    Each line is self-contained (``json.loads`` per line reconstructs the
    alert), and the file handle is flushed per alert so a crashed process
    loses at most the alert being written.
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._handle = open(path, "a", encoding="utf-8")

    @property
    def path(self) -> str:
        """Path of the audit log file."""
        return self._path

    def emit(self, alert: DriftAlert) -> None:
        self._handle.write(json.dumps(alert.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
