"""Pluggable alert sinks for the drift-monitoring hub.

A sink receives :class:`DriftAlert` events whenever a hosted monitor enters
its warning zone or flags a drift.  Four implementations cover the common
shapes of a production monitoring loop (the ProfitForge-style daemon pattern:
detector fires → notification goes out):

* :class:`CallbackSink` — invoke a user callable per alert;
* :class:`QueueSink` — buffer alerts in memory for polling consumers (the
  TCP server drains one of these for its ``alerts`` op);
* :class:`JsonlAuditSink` — append one JSON object per alert to an audit log
  (optionally fsync'd per line);
* :class:`WebhookSink` — POST alerts to an HTTP endpoint from a background
  thread with bounded retries, exponential backoff with jitter, a circuit
  breaker, and a dead-letter JSONL file for alerts that exhaust delivery.

Sinks should never raise out of :meth:`AlertSink.emit` — and the hub
*enforces* the contract: a raising sink is caught per delivery, counted in
``MonitorHub.stats()["n_sink_failures"]``, and never aborts an ``observe``/
``ingest`` flush, because the hub treats a failing sink as a reporting
problem, not a monitoring problem, and keeps the detector state
authoritative.

Delivery metadata: every alert carries a per-monitor monotonic ``seq``
number (assigned by the hub, persisted in its write-ahead log and
checkpoints), a wall-clock ``ts``, and a ``redelivered`` flag that is true
only for alerts re-delivered from the WAL after a restore — consumers that
need exactly-once semantics deduplicate on ``(tenant, monitor_id, seq)``;
see ``docs/serving.md``'s "Durability & delivery semantics".
"""

from __future__ import annotations

import abc
import json
import logging
import queue
import random
import threading
import time
import urllib.request
from collections import deque
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

__all__ = [
    "DriftAlert",
    "AlertSink",
    "CallbackSink",
    "QueueSink",
    "JsonlAuditSink",
    "WebhookSink",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DriftAlert:
    """One warning/drift transition of a hosted monitor.

    Attributes
    ----------
    tenant:
        Tenant namespace of the monitor that fired.
    monitor_id:
        Monitor identifier within the tenant.
    kind:
        ``"drift"`` for a flagged drift, ``"warning"`` for entering the
        warning zone.
    position:
        Global 0-based index of the triggering element within the monitor's
        lifetime stream (i.e. ``n_seen - 1`` of the element that fired).
    detector:
        Class name of the underlying detector.
    n_drifts:
        Lifetime drift count of the monitor *including* this event (for
        drift alerts).
    seq:
        Monotonic per-monitor alert sequence number (1-based), assigned by
        the hub and persisted in its WAL and checkpoints.  ``(tenant,
        monitor_id, seq)`` identifies an alert across restarts — the
        deduplication key for exactly-once consumers.
    ts:
        Wall-clock emission time (``time.time()`` epoch seconds); ``0.0``
        for alerts constructed without one.
    redelivered:
        True only when this delivery is a WAL replay after a restore (the
        original delivery happened — or was about to happen — before the
        process died).
    """

    tenant: str
    monitor_id: str
    kind: str
    position: int
    detector: str
    n_drifts: int
    seq: int = 0
    ts: float = 0.0
    redelivered: bool = False

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the audit log, WAL, and wire protocol.

        Built by hand rather than :func:`dataclasses.asdict` — every field
        is a scalar, and ``asdict``'s recursive deepcopy machinery is ~4x
        the cost of the whole WAL append that serializes this dict.
        """
        return {
            "tenant": self.tenant,
            "monitor_id": self.monitor_id,
            "kind": self.kind,
            "position": self.position,
            "detector": self.detector,
            "n_drifts": self.n_drifts,
            "seq": self.seq,
            "ts": self.ts,
            "redelivered": self.redelivered,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DriftAlert":
        """Rebuild an alert from :meth:`to_dict` output (extra keys ignored)."""
        return cls(
            tenant=str(payload["tenant"]),
            monitor_id=str(payload["monitor_id"]),
            kind=str(payload["kind"]),
            position=int(payload["position"]),
            detector=str(payload["detector"]),
            n_drifts=int(payload["n_drifts"]),
            seq=int(payload.get("seq", 0)),
            ts=float(payload.get("ts", 0.0)),
            redelivered=bool(payload.get("redelivered", False)),
        )

    def as_redelivery(self) -> "DriftAlert":
        """A copy flagged as a WAL re-delivery."""
        return replace(self, redelivered=True)


class AlertSink(abc.ABC):
    """Receiver of :class:`DriftAlert` events."""

    @abc.abstractmethod
    def emit(self, alert: DriftAlert) -> None:
        """Deliver one alert."""

    def stats(self) -> Dict[str, Any]:
        """Operational counters for the ``metrics`` op (default: none)."""
        return {}

    def close(self) -> None:
        """Release any resources held by the sink (default: nothing)."""


class CallbackSink(AlertSink):
    """Invoke ``callback(alert)`` for every alert."""

    def __init__(self, callback: Callable[[DriftAlert], None]) -> None:
        self._callback = callback

    def emit(self, alert: DriftAlert) -> None:
        self._callback(alert)


class QueueSink(AlertSink):
    """Buffer alerts in memory, oldest first, for polling consumers.

    With a ``maxlen``, a full queue evicts the *oldest* alert on every new
    ``emit``.  Eviction is never silent: each dropped alert increments
    :attr:`n_dropped`, so a consumer that polls too slowly can tell alerts
    were lost (the TCP server reports the counter in its ``alerts``
    response).

    Loss and replay are counted separately: :attr:`n_dropped` counts only
    capacity evictions (alerts the consumer will never see from this
    queue), while :attr:`n_redelivered` counts WAL replay re-deliveries
    (``alert.redelivered``) — duplicates of alerts whose original delivery
    preceded a crash, *not* losses.  An operator watching the two counters
    can distinguish "my consumer is too slow" from "the hub restarted and
    replayed its log".
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        self._alerts: Deque[DriftAlert] = deque(maxlen=maxlen)
        self._n_dropped = 0
        self._n_redelivered = 0

    def emit(self, alert: DriftAlert) -> None:
        if alert.redelivered:
            self._n_redelivered += 1
        if (
            self._alerts.maxlen is not None
            and len(self._alerts) == self._alerts.maxlen
        ):
            self._n_dropped += 1
        self._alerts.append(alert)

    def __len__(self) -> int:
        return len(self._alerts)

    @property
    def n_dropped(self) -> int:
        """Lifetime count of alerts evicted because the queue was full."""
        return self._n_dropped

    @property
    def n_redelivered(self) -> int:
        """Lifetime count of WAL replay re-deliveries received."""
        return self._n_redelivered

    def drain(self) -> List[DriftAlert]:
        """Return and clear all buffered alerts.

        Counters survive the drain: :attr:`n_dropped` and
        :attr:`n_redelivered` are lifetime totals, not per-drain ones.
        """
        drained = list(self._alerts)
        self._alerts.clear()
        return drained

    def stats(self) -> Dict[str, Any]:
        return {
            "n_buffered": len(self._alerts),
            "n_dropped": self._n_dropped,
            "n_redelivered": self._n_redelivered,
        }


class JsonlAuditSink(AlertSink):
    """Append one JSON object per alert to a JSON-lines audit log.

    Each line is self-contained (``json.loads`` per line reconstructs the
    alert).  By default the handle is flushed per alert, so a crashed
    process loses at most the alert being written — to the *OS*; with
    ``fsync=True`` every line is also fsync'd (the WAL's flush helper), so
    it survives a power loss too, at ~one disk sync per alert.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self._path = path
        self._fsync = bool(fsync)
        self._handle = open(path, "a", encoding="utf-8")  # repro: allow(durability) -- append-only audit log, documented at-least-once: readers tolerate a torn trailing line and fsync is opt-in (fsync=True); the WAL, not this sink, is the delivery guarantee
        self._n_emitted = 0

    @property
    def path(self) -> str:
        """Path of the audit log file."""
        return self._path

    def emit(self, alert: DriftAlert) -> None:
        from repro.serving.wal import flush_handle

        self._handle.write(json.dumps(alert.to_dict(), sort_keys=True) + "\n")
        flush_handle(self._handle, fsync=self._fsync)
        self._n_emitted += 1

    def stats(self) -> Dict[str, Any]:
        return {"n_emitted": self._n_emitted, "fsync": self._fsync}

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def _http_post_json(url: str, payload: bytes, timeout: float) -> None:
    """Default webhook transport: POST JSON, raise on any failure."""
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        status = getattr(response, "status", 200)
        if status >= 400:  # pragma: no cover - urllib raises first
            raise OSError(f"webhook returned HTTP {status}")


@dataclass
class _WebhookCounters:
    """Lifetime delivery counters (read under the sink's lock)."""

    n_delivered: int = 0
    n_retries: int = 0
    n_failed: int = 0
    n_dead_lettered: int = 0
    n_queue_full: int = 0
    n_circuit_open_drops: int = 0
    n_circuit_opens: int = 0
    consecutive_failures: int = 0
    last_error: Optional[str] = None


class WebhookSink(AlertSink):
    """POST alerts to an HTTP endpoint without ever blocking the hub.

    ``emit()`` only enqueues (``put_nowait``); a daemon worker thread owns
    all network I/O, so a slow or permanently-down endpoint can never stall
    an ``ingest`` flush.  Delivery policy, per alert:

    * up to ``1 + max_retries`` transport attempts;
    * exponential backoff between attempts — ``backoff * 2**attempt``
      seconds, capped at ``backoff_cap``, with multiplicative jitter drawn
      from ``[1, 1 + jitter]`` (decorrelates a fleet of retrying sinks);
    * an alert that exhausts its attempts is appended to the dead-letter
      JSONL file (one self-contained object per line, with the failure
      reason) and counted, never silently dropped;
    * ``breaker_threshold`` *consecutive* failed deliveries open a circuit
      breaker: for ``breaker_reset`` seconds alerts go straight to the
      dead-letter file without touching the network, then one delivery is
      allowed through as a half-open probe (success closes the circuit,
      failure re-opens it).

    A full queue (``queue_size``) dead-letters the incoming alert
    immediately — backpressure on the hub is never an option.

    ``transport`` is injectable for tests: a callable ``(url,
    payload_bytes, timeout)`` that raises on failure.  The default POSTs
    JSON via ``urllib.request``.

    ``on_breaker_open`` is an optional callback fired (from the worker
    thread) each time the breaker transitions closed → open, with
    ``{"url", "consecutive_failures", "reset_seconds"}`` — the hub wires
    this into its event journal.  It must be thread-safe and non-raising.
    """

    def __init__(
        self,
        url: str,
        max_retries: int = 4,
        backoff: float = 0.5,
        backoff_cap: float = 30.0,
        jitter: float = 0.25,
        breaker_threshold: int = 5,
        breaker_reset: float = 30.0,
        queue_size: int = 10_000,
        timeout: float = 5.0,
        dead_letter_path: Optional[str] = None,
        transport: Optional[Callable[[str, bytes, float], None]] = None,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
        on_breaker_open: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        from repro.exceptions import ConfigurationError

        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 0 or backoff_cap < backoff:
            raise ConfigurationError(
                f"need 0 <= backoff <= backoff_cap, got {backoff}/{backoff_cap}"
            )
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        if breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if queue_size < 1:
            raise ConfigurationError(f"queue_size must be >= 1, got {queue_size}")
        self._url = url
        self._max_retries = max_retries
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._jitter = jitter
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = breaker_reset
        self._timeout = timeout
        self._dead_letter_path = dead_letter_path
        self._transport = transport or _http_post_json
        self._on_breaker_open = on_breaker_open
        self._rng = rng or random.Random()
        self._clock = clock
        self._queue: "queue.Queue[DriftAlert]" = queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()
        self._counters = _WebhookCounters()
        self._circuit_open_until: Optional[float] = None
        self._dead_letter_handle = None
        self._stop = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._worker = threading.Thread(
            target=self._run, name="repro-webhook-sink", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------- hub side

    def emit(self, alert: DriftAlert) -> None:
        """Enqueue one alert; never blocks, never raises for a down endpoint."""
        if self._stop.is_set():
            self._dead_letter(alert, "sink-closed")
            return
        try:
            self._queue.put_nowait(alert)
            self._idle.clear()
        except queue.Full:
            with self._lock:
                self._counters.n_queue_full += 1
            self._dead_letter(alert, "queue-full")

    # ---------------------------------------------------------- worker side

    def _run(self) -> None:
        while True:
            try:
                alert = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._queue.empty():
                    self._idle.set()
                if self._stop.is_set():
                    return
                continue
            try:
                self._deliver(alert)
            except Exception:  # pragma: no cover - defensive  # repro: allow(broad-except) -- guards the worker thread against bugs in _deliver itself; real delivery failures are already counted per cause (n_failed/n_retries/n_dead_lettered) inside _deliver
                logger.exception("webhook delivery loop error")
            finally:
                self._queue.task_done()
                if self._queue.empty():
                    self._idle.set()

    def _deliver(self, alert: DriftAlert) -> None:
        now = self._clock()
        with self._lock:
            open_until = self._circuit_open_until
        if open_until is not None and now < open_until:
            with self._lock:
                self._counters.n_circuit_open_drops += 1
            self._dead_letter(alert, "circuit-open")
            return
        # Either the circuit is closed, or this delivery is the half-open
        # probe that decides whether it may close again.
        payload = json.dumps(alert.to_dict(), sort_keys=True).encode("utf-8")
        error: Optional[BaseException] = None
        for attempt in range(self._max_retries + 1):
            if attempt > 0:
                delay = min(
                    self._backoff * (2.0 ** (attempt - 1)), self._backoff_cap
                )
                delay *= 1.0 + self._jitter * self._rng.random()
                with self._lock:
                    self._counters.n_retries += 1
                if self._stop.wait(delay):
                    # Closing: one final immediate attempt, then give up.
                    pass
            try:
                self._transport(self._url, payload, self._timeout)
            except Exception as exc:  # repro: allow(broad-except) -- every failed attempt retries with capped backoff; when the loop ends the failure is counted (n_failed, consecutive_failures) and the alert is dead-lettered with its reason
                error = exc
                continue
            with self._lock:
                self._counters.n_delivered += 1
                self._counters.consecutive_failures = 0
                self._circuit_open_until = None
            return
        opened = False
        with self._lock:
            self._counters.n_failed += 1
            self._counters.consecutive_failures += 1
            self._counters.last_error = repr(error)
            if self._counters.consecutive_failures >= self._breaker_threshold:
                if self._circuit_open_until is None:
                    self._counters.n_circuit_opens += 1
                    opened = True
                self._circuit_open_until = self._clock() + self._breaker_reset
            consecutive = self._counters.consecutive_failures
        if opened and self._on_breaker_open is not None:
            self._on_breaker_open(
                {
                    "url": self._url,
                    "consecutive_failures": consecutive,
                    "reset_seconds": self._breaker_reset,
                }
            )
        self._dead_letter(alert, "retries-exhausted", error)

    def _dead_letter(
        self,
        alert: DriftAlert,
        reason: str,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            self._counters.n_dead_lettered += 1
            if self._dead_letter_path is None:
                return
            try:
                if self._dead_letter_handle is None:
                    self._dead_letter_handle = open(  # repro: allow(durability) -- the dead-letter JSONL is the best-effort record of last resort on the failure path; demanding atomicity here would add failure modes to failure handling
                        self._dead_letter_path, "a", encoding="utf-8"
                    )
                record = alert.to_dict()
                record["dead_letter_reason"] = reason
                if error is not None:
                    record["dead_letter_error"] = repr(error)
                self._dead_letter_handle.write(
                    json.dumps(record, sort_keys=True) + "\n"
                )
                self._dead_letter_handle.flush()
            except OSError:  # pragma: no cover - disk trouble
                logger.exception(
                    "could not dead-letter alert for %s/%s",
                    alert.tenant,
                    alert.monitor_id,
                )

    # -------------------------------------------------------------- control

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait until the queue is drained and the worker is idle."""
        deadline = None if timeout is None else self._clock() + timeout
        while not (self._queue.empty() and self._idle.is_set()):
            if deadline is not None and self._clock() > deadline:
                return False
            time.sleep(0.005)
        return True

    @property
    def circuit_open(self) -> bool:
        """Whether the breaker is currently rejecting deliveries."""
        with self._lock:
            return (
                self._circuit_open_until is not None
                and self._clock() < self._circuit_open_until
            )

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            counters = asdict(self._counters)
        counters["url"] = self._url
        counters["n_queued"] = self._queue.qsize()
        counters["circuit_open"] = self.circuit_open
        return counters

    def close(self) -> None:
        """Stop the worker (remaining queued alerts are dead-lettered)."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._worker.join(timeout=10.0)
        while True:
            try:
                alert = self._queue.get_nowait()
            except queue.Empty:
                break
            self._dead_letter(alert, "sink-closed")
        with self._lock:
            if self._dead_letter_handle is not None:
                self._dead_letter_handle.close()
                self._dead_letter_handle = None
