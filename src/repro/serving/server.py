"""Asyncio JSON-lines TCP server exposing a :class:`MonitorHub` (or a
multi-process :class:`~repro.serving.sharded.ShardedHub`).

External processes stream error values to hosted monitors over a plain TCP
connection, one JSON object per line (newline-delimited JSON, UTF-8).  Every
request carries an ``"op"`` field; every response carries ``"ok"`` plus
op-specific payload, and errors come back as ``{"ok": false, "error": ...}``
without killing the connection.

Supported operations::

    {"op": "ping"}
    {"op": "register", "tenant": "t", "monitor": "m",
     "detector": "OPTWIN", "params": {"rho": 0.5}, "exist_ok": true}
    {"op": "observe", "tenant": "t", "monitor": "m", "values": [0, 1, 0]}
    {"op": "ingest", "events": [["t", "m", [0, 1]], ["t", "m2", 1.0]]}
    {"op": "stats"}                      # hub-wide
    {"op": "stats", "tenant": "t"}       # per tenant
    {"op": "stats", "tenant": "t", "monitor": "m"}
    {"op": "alerts"}                     # drain buffered alerts
    {"op": "alerts_history", "tenant": "t", "monitor": "m",
     "since": 1e9, "until": 2e9, "limit": 100}   # WAL-backed, all optional
    {"op": "metrics"}                    # rates, latency percentiles, WAL/sinks
    {"op": "metrics_prom"}               # Prometheus text exposition
    {"op": "trace"}                      # drain spans as Chrome trace JSON
    {"op": "events", "kind": "slow_flush", "limit": 100}   # journal, all optional
    {"op": "snapshot"}                   # checkpoint the hub now

``observe`` responds with lifetime stream positions (``drifts`` /
``warnings``) and the monitor's counters, so a client can react to a drift
from the response alone; the ``alerts`` op additionally drains the server's
internal queue sink for clients that poll transitions out of band.

Hub operations run on a dedicated single-thread executor rather than inline
on the event loop: the WAL fsyncs and checkpoint writes inside ``observe`` /
``ingest`` are blocking I/O that would stall every other connection, the
metrics endpoint, and the signal handlers.  The single worker thread keeps
the old serialisation guarantee — all detector mutations still execute one
at a time, in submission order, without locks — and each connection awaits
its dispatch before reading the next line, so per-connection response
ordering and the WAL's exactly-once append order are unchanged.  Throughput
comes from batching (send chunks, not single values) — see
``benchmarks/bench_serving_throughput.py``.
"""

from __future__ import annotations

import asyncio
import json
import logging
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.base import DriftDetector
from repro.exceptions import ReproError
from repro.obs.prom import hub_exposition
from repro.obs.trace import chrome_trace, write_chrome_trace
from repro.serving.hub import MonitorHub
from repro.serving.sinks import QueueSink

__all__ = ["ServingServer", "MAX_LINE_BYTES"]

logger = logging.getLogger(__name__)

#: Upper bound of one request line (protects the loop from unbounded reads);
#: 16 MiB fits chunks of ~1M values.
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Capacity of the server's internal alert buffer (the ``alerts`` op drains
#: it).  Bounded so a deployment whose clients never poll ``alerts`` keeps
#: only the most recent transitions instead of accumulating forever.
ALERT_BUFFER_LIMIT = 10_000


class ServingServer:
    """JSON-lines TCP front-end over a :class:`MonitorHub`.

    Parameters
    ----------
    hub:
        The hub to serve — a single-process :class:`MonitorHub` (a
        :class:`QueueSink` is attached so the ``alerts`` op can hand out
        buffered transitions) or a multi-process ``ShardedHub`` (which buffers
        alerts in its workers; the server drains them via
        ``hub.drain_alerts()``).
    host, port:
        Listen address.  Port ``0`` binds an ephemeral port; read the actual
        one from :attr:`port` after :meth:`start`.
    trace_dir:
        When set, every ``trace`` op also writes the drained spans to a
        numbered Chrome ``trace_event`` JSON file in this directory
        (``trace-0001.json``, ...) — drop it on https://ui.perfetto.dev.
    """

    def __init__(
        self,
        hub: MonitorHub,
        host: str = "127.0.0.1",
        port: int = 7737,
        trace_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self._hub = hub
        self._host = host
        self._requested_port = port
        self._trace_dir = Path(trace_dir) if trace_dir else None
        self._n_trace_dumps = 0
        if hasattr(hub, "drain_alerts"):
            # Sharded hub: alerts buffer inside the shard workers.
            self._alert_queue: Optional[QueueSink] = None
        else:
            self._alert_queue = QueueSink(maxlen=ALERT_BUFFER_LIMIT)
            hub.add_sink(self._alert_queue)
            if getattr(hub, "wal_replay_pending", False):
                # The hub deferred its WAL replay (wal_auto_replay=False)
                # so the post-checkpoint alert tail lands in the queue the
                # ``alerts`` op drains, not in a pre-server void.
                hub.replay_wal()
        self._server: Optional[asyncio.AbstractServer] = None
        # Dispatch offload: one worker thread, created on start().  A single
        # worker is load-bearing — it serialises all hub mutations (the
        # no-locks invariant the hub relies on) while keeping the event loop
        # free of the WAL fsync / checkpoint writes inside hub ops.
        self._dispatch_executor: Optional[ThreadPoolExecutor] = None

    @property
    def hub(self) -> MonitorHub:
        """The hub this server fronts."""
        return self._hub

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start` runs)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._requested_port

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self._dispatch_executor is None:
            self._dispatch_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serving-dispatch"
            )
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self._host,
            port=self._requested_port,
            limit=MAX_LINE_BYTES,
        )

    async def stop(self) -> None:
        """Stop accepting connections and quiesce the dispatch thread.

        After this returns, no hub operation is in flight and none can
        start (late submissions from a still-open connection fail and
        close that connection) — which is what lets the shutdown path
        checkpoint and close the hub from the event-loop thread without
        racing the dispatch thread.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatch_executor is not None:
            executor, self._dispatch_executor = self._dispatch_executor, None
            # shutdown(wait=True) drains the queued dispatches; run it on a
            # throwaway default-executor thread so the wait does not block
            # the loop that must keep serving those dispatches' responses.
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, executor.shutdown)

    async def serve_forever(self) -> None:
        """Run until cancelled (call :meth:`start` first)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------ connection

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        logger.debug("client connected: %s", peer)
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_encode({"ok": False, "error": "request too large"}))
                    await writer.drain()
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                executor = self._dispatch_executor
                if executor is None:
                    break  # server stopped while this connection was idle
                try:
                    response = await loop.run_in_executor(
                        executor, self._dispatch_line, stripped
                    )
                except RuntimeError:
                    # stop() shut the executor between the check above and
                    # the submission; the hub is quiescing — drop the line.
                    break
                writer.write(_encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled the handler mid-read; close the
            # connection quietly instead of surfacing the cancellation to
            # asyncio's connection-lost callback.
            pass
        finally:
            # close() without awaiting wait_closed(): the transport finishes
            # closing on the loop, and the handler task never parks inside a
            # close wait where event-loop teardown would cancel it noisily.
            writer.close()
            logger.debug("client disconnected: %s", peer)

    def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"invalid JSON: {exc.msg}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        try:
            return self._dispatch(request)
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive  # repro: allow(broad-except) -- the failure is surfaced to the caller as an error response (and logged with traceback); a request handler that re-raised would kill the connection for every other pipelined request
            logger.exception("unexpected error serving request")
            return {"ok": False, "error": f"internal error: {exc}"}

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "register":
            return self._op_register(request)
        if op == "observe":
            return self._op_observe(request)
        if op == "ingest":
            return self._op_ingest(request)
        if op == "stats":
            return {
                "ok": True,
                "stats": self._hub.stats(
                    request.get("tenant"), request.get("monitor")
                ),
            }
        if op == "alerts":
            if self._alert_queue is not None:
                alerts = self._alert_queue.drain()
                n_dropped = self._alert_queue.n_dropped
            else:
                alerts, n_dropped = self._hub.drain_alerts()
            return {
                "ok": True,
                "alerts": [alert.to_dict() for alert in alerts],
                "n_dropped": n_dropped,
            }
        if op == "alerts_history":
            return {
                "ok": True,
                "alerts": self._hub.alerts_history(
                    tenant=request.get("tenant"),
                    monitor_id=request.get("monitor"),
                    since=request.get("since"),
                    until=request.get("until"),
                    limit=int(request.get("limit", 1000)),
                ),
            }
        if op == "metrics":
            return {"ok": True, "metrics": self._hub.metrics()}
        if op == "metrics_prom":
            return {"ok": True, "exposition": hub_exposition(self._hub)}
        if op == "trace":
            return self._op_trace()
        if op == "events":
            limit = request.get("limit")
            return {
                "ok": True,
                "events": self._hub.journal_events(
                    limit=int(limit) if limit is not None else None,
                    kind=request.get("kind"),
                ),
            }
        if op == "snapshot":
            path = self._hub.checkpoint()
            return {"ok": True, "checkpoint": str(path)}
        if op == "reshard":
            return self._op_reshard(request)
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _op_trace(self) -> Dict[str, Any]:
        """Drain all finished spans as a Chrome ``trace_event`` document.

        On a sharded hub the drain covers the parent and every live worker,
        so one response holds the whole fan-out.  Destructive (the rings
        clear); with a ``trace_dir`` the document is also written to a
        numbered file for offline Perfetto sessions.
        """
        spans = self._hub.drain_trace()
        document = chrome_trace(spans)
        path: Optional[str] = None
        if self._trace_dir is not None and spans:
            self._n_trace_dumps += 1
            target = self._trace_dir / f"trace-{self._n_trace_dumps:04d}.json"
            path = str(write_chrome_trace(target, spans))
        return {
            "ok": True,
            "n_spans": len(spans),
            "trace": document,
            "path": path,
        }

    def _op_reshard(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Live-migrate a sharded hub to a new worker count.

        The reshard runs on the single dispatch thread (like every other
        hub op): no ingest can interleave with the migration, which is
        exactly the quiesce the protocol needs.
        """
        if not hasattr(self._hub, "reshard"):
            return {"ok": False, "error": "hub is not sharded; reshard needs --shards"}
        shards = request.get("shards")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            return {"ok": False, "error": "reshard needs 'shards': a positive integer"}
        return {"ok": True, **self._hub.reshard(shards)}

    def _op_register(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant, monitor = _identity(request)
        registered = self._hub.register(
            tenant,
            monitor,
            detector=request.get("detector", "OPTWIN"),
            params=request.get("params"),
            exist_ok=bool(request.get("exist_ok", False)),
        )
        # MonitorHub returns the live detector; a sharded hub keeps its
        # detectors inside the workers and returns an info dict instead.
        if isinstance(registered, DriftDetector):
            detector_name, n_seen = type(registered).__name__, registered.n_seen
        else:
            detector_name, n_seen = registered["detector"], registered["n_seen"]
        return {
            "ok": True,
            "tenant": tenant,
            "monitor": monitor,
            "detector": detector_name,
            "n_seen": n_seen,
        }

    def _op_ingest(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Interleaved multi-monitor batch — one request, one hub flush.

        On a sharded hub this is the op that actually buys multi-core
        parallelism over the wire: the hub fans the batch out as one message
        per shard and the workers flush concurrently, where per-monitor
        ``observe`` requests serialize on the event loop.
        """
        events = _op_ingest_events(request.get("events"))
        span = self._hub.tracer.begin("server.ingest", n_events=len(events))
        try:
            results = self._hub.ingest(
                events,
                trace_ctx=span.context() if span is not None else None,
            )
        finally:
            if span is not None:
                span.end()
        return {
            "ok": True,
            "results": [
                {
                    "tenant": outcome.tenant,
                    "monitor": outcome.monitor_id,
                    "n": outcome.n_processed,
                    "drifts": outcome.drift_positions,
                    "warnings": outcome.warning_positions,
                }
                for outcome in results
            ],
        }

    def _op_observe(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant, monitor = _identity(request)
        values = request.get("values")
        if not isinstance(values, list) or not values:
            return {"ok": False, "error": "observe needs a non-empty values list"}
        outcome, stats = self._hub.observe_with_stats(tenant, monitor, values)
        return {
            "ok": True,
            "tenant": tenant,
            "monitor": monitor,
            "n": outcome.n_processed,
            "drifts": outcome.drift_positions,
            "warnings": outcome.warning_positions,
            "counters": {
                "n_seen": stats["n_seen"],
                "n_drifts": stats["n_drifts"],
                "n_warnings": stats["n_warnings"],
            },
        }


def _op_ingest_events(raw: Any) -> list:
    if not isinstance(raw, list) or not raw:
        raise ReproError("ingest needs a non-empty events list")
    events = []
    for item in raw:
        if not isinstance(item, list) or len(item) != 3:
            raise ReproError(
                "each ingest event must be a [tenant, monitor, values] triple"
            )
        events.append((str(item[0]), str(item[1]), item[2]))
    return events


def _identity(request: Dict[str, Any]) -> tuple:
    tenant = request.get("tenant")
    monitor = request.get("monitor")
    if not tenant or not monitor:
        raise ReproError("request needs both 'tenant' and 'monitor' fields")
    return str(tenant), str(monitor)


def _encode(response: Dict[str, Any]) -> bytes:
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")
