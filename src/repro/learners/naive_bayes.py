"""Incremental Naive Bayes classifier (the MOA ``NaiveBayes`` equivalent).

Nominal attributes use Laplace-smoothed frequency counts; numeric attributes
use per-class Gaussian likelihoods maintained with Welford accumulators.  This
is the learner the paper's Table 2 "Classification" experiments reset whenever
a drift detector fires.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.learners.base import Classifier
from repro.streams.base import Attribute, Instance

__all__ = ["NaiveBayes"]

#: Variance floor for the Gaussian likelihoods (avoids division by zero when a
#: class has seen a single value for an attribute).
_MIN_VARIANCE = 1e-6
#: Laplace smoothing constant for nominal attribute counts.
_LAPLACE = 1.0


class _GaussianEstimator:
    """Welford accumulator for one (class, numeric attribute) pair."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        if self.count < 2:
            return _MIN_VARIANCE
        return max(self.m2 / (self.count - 1), _MIN_VARIANCE)

    def log_likelihood(self, value: float) -> float:
        variance = self.variance
        return -0.5 * math.log(2.0 * math.pi * variance) - (
            (value - self.mean) ** 2
        ) / (2.0 * variance)


class NaiveBayes(Classifier):
    """Incremental Naive Bayes for mixed nominal/numeric streams."""

    def __init__(self, schema: Sequence[Attribute], n_classes: int) -> None:
        super().__init__(schema=schema, n_classes=n_classes)
        self._init_model()

    def _init_model(self) -> None:
        self._class_counts = np.zeros(self._n_classes, dtype=np.float64)
        self._nominal_counts: List[Dict[int, np.ndarray]] = []
        self._gaussians: List[List[_GaussianEstimator]] = []
        for attribute in self._schema:
            if attribute.is_nominal:
                self._nominal_counts.append(
                    {label: np.zeros(attribute.n_values) for label in range(self._n_classes)}
                )
                self._gaussians.append([])
            else:
                self._nominal_counts.append({})
                self._gaussians.append(
                    [_GaussianEstimator() for _ in range(self._n_classes)]
                )

    # ------------------------------------------------------------ learning

    def _learn_one(self, instance: Instance) -> None:
        label = instance.y
        self._class_counts[label] += instance.weight
        for index, attribute in enumerate(self._schema):
            value = instance.x[index]
            if attribute.is_nominal:
                nominal_value = int(value)
                if 0 <= nominal_value < attribute.n_values:
                    self._nominal_counts[index][label][nominal_value] += instance.weight
            else:
                self._gaussians[index][label].update(float(value))

    # ---------------------------------------------------------- prediction

    def predict_proba_one(self, instance: Instance) -> np.ndarray:
        total = float(self._class_counts.sum())
        log_scores = np.zeros(self._n_classes, dtype=np.float64)
        for label in range(self._n_classes):
            prior = (self._class_counts[label] + _LAPLACE) / (
                total + _LAPLACE * self._n_classes
            )
            log_scores[label] = math.log(prior)
            if self._class_counts[label] == 0:
                continue
            for index, attribute in enumerate(self._schema):
                value = instance.x[index]
                if attribute.is_nominal:
                    counts = self._nominal_counts[index][label]
                    nominal_value = int(value)
                    count = (
                        counts[nominal_value]
                        if 0 <= nominal_value < attribute.n_values
                        else 0.0
                    )
                    likelihood = (count + _LAPLACE) / (
                        counts.sum() + _LAPLACE * attribute.n_values
                    )
                    log_scores[label] += math.log(likelihood)
                else:
                    estimator = self._gaussians[index][label]
                    if estimator.count > 0:
                        log_scores[label] += estimator.log_likelihood(float(value))
        # Convert to a stable probability-like vector.
        log_scores -= log_scores.max()
        scores = np.exp(log_scores)
        return scores / scores.sum()

    def reset(self) -> None:
        """Forget all counts and likelihood estimates."""
        self._init_model()
        self._n_trained = 0
