"""Online multiclass perceptron / logistic classifier.

A light-weight linear learner used by examples and integration tests as a
faster alternative to Naive Bayes.  Numeric attributes are standardised with
running statistics; nominal attributes are one-hot encoded.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.learners.base import Classifier
from repro.streams.base import Attribute, Instance

__all__ = ["OnlinePerceptron"]


class OnlinePerceptron(Classifier):
    """Multiclass perceptron with running feature standardisation.

    Parameters
    ----------
    schema, n_classes:
        Stream description, as for every :class:`~repro.learners.base.Classifier`.
    learning_rate:
        Step size of the perceptron updates.
    """

    def __init__(
        self,
        schema: Sequence[Attribute],
        n_classes: int,
        learning_rate: float = 0.1,
    ) -> None:
        super().__init__(schema=schema, n_classes=n_classes)
        self._learning_rate = learning_rate
        self._encoded_size = self._compute_encoded_size()
        self._init_model()

    def _compute_encoded_size(self) -> int:
        size = 0
        for attribute in self._schema:
            size += attribute.n_values if attribute.is_nominal else 1
        return size + 1  # bias

    def _init_model(self) -> None:
        self._weights = np.zeros((self._n_classes, self._encoded_size))
        self._feature_count = 0
        self._feature_mean = np.zeros(self._encoded_size)
        self._feature_m2 = np.zeros(self._encoded_size)

    # ------------------------------------------------------------ encoding

    def _encode(self, instance: Instance) -> np.ndarray:
        parts: List[float] = []
        for index, attribute in enumerate(self._schema):
            value = instance.x[index]
            if attribute.is_nominal:
                one_hot = [0.0] * attribute.n_values
                nominal_value = int(value)
                if 0 <= nominal_value < attribute.n_values:
                    one_hot[nominal_value] = 1.0
                parts.extend(one_hot)
            else:
                parts.append(float(value))
        parts.append(1.0)  # bias
        return np.asarray(parts, dtype=np.float64)

    def _standardise(self, encoded: np.ndarray, update: bool) -> np.ndarray:
        if update:
            self._feature_count += 1
            delta = encoded - self._feature_mean
            self._feature_mean += delta / self._feature_count
            self._feature_m2 += delta * (encoded - self._feature_mean)
        if self._feature_count < 2:
            return encoded
        std = np.sqrt(np.maximum(self._feature_m2 / (self._feature_count - 1), 1e-12))
        standardised = (encoded - self._feature_mean) / std
        standardised[-1] = 1.0  # keep the bias untouched
        return standardised

    # ------------------------------------------------------------ learning

    def _learn_one(self, instance: Instance) -> None:
        encoded = self._standardise(self._encode(instance), update=True)
        scores = self._weights @ encoded
        predicted = int(np.argmax(scores))
        if predicted != instance.y:
            self._weights[instance.y] += self._learning_rate * encoded
            self._weights[predicted] -= self._learning_rate * encoded

    # ---------------------------------------------------------- prediction

    def predict_proba_one(self, instance: Instance) -> np.ndarray:
        encoded = self._standardise(self._encode(instance), update=False)
        scores = self._weights @ encoded
        scores = scores - scores.max()
        exp_scores = np.exp(scores)
        return exp_scores / exp_scores.sum()

    def reset(self) -> None:
        """Forget the weights and the feature statistics."""
        self._init_model()
        self._n_trained = 0
