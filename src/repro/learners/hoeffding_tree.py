"""Hoeffding tree (VFDT) classifier — extension learner.

A simplified but functional implementation of the Very Fast Decision Tree of
Domingos & Hulten (2000), the default stream classifier of MOA/River:

* leaves collect sufficient statistics (class counts, nominal value counts,
  per-class Gaussian estimators for numeric attributes);
* once a leaf has seen ``grace_period`` new instances, the best and
  second-best candidate splits are compared with the Hoeffding bound and the
  leaf is split when the difference is significant (or below the tie
  threshold);
* numeric attributes use binary splits at candidate thresholds derived from
  the per-class Gaussian statistics;
* prediction uses the majority class of the leaf (with a Naive Bayes option).

The tree is used by the extension examples and the ablation benchmarks as a
stronger learner than Naive Bayes; it is not required by any of the paper's
headline experiments.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.learners.base import Classifier
from repro.streams.base import Attribute, Instance

__all__ = ["HoeffdingTree"]

_MIN_VARIANCE = 1e-6


class _GaussianPerClass:
    """Per-class Gaussian summaries of one numeric attribute at a leaf."""

    __slots__ = ("counts", "means", "m2s")

    def __init__(self, n_classes: int) -> None:
        self.counts = np.zeros(n_classes)
        self.means = np.zeros(n_classes)
        self.m2s = np.zeros(n_classes)

    def update(self, label: int, value: float) -> None:
        self.counts[label] += 1
        delta = value - self.means[label]
        self.means[label] += delta / self.counts[label]
        self.m2s[label] += delta * (value - self.means[label])

    def candidate_thresholds(self, n_candidates: int = 8) -> List[float]:
        """Candidate split points spanning the observed per-class ranges."""
        active = self.counts > 0
        if not np.any(active):
            return []
        lows = self.means[active] - 2.0 * np.sqrt(self._variances()[active])
        highs = self.means[active] + 2.0 * np.sqrt(self._variances()[active])
        low, high = float(np.min(lows)), float(np.max(highs))
        if not math.isfinite(low) or not math.isfinite(high) or low >= high:
            return []
        step = (high - low) / (n_candidates + 1)
        return [low + step * (i + 1) for i in range(n_candidates)]

    def _variances(self) -> np.ndarray:
        variances = np.full_like(self.means, _MIN_VARIANCE)
        mask = self.counts > 1
        variances[mask] = np.maximum(
            self.m2s[mask] / (self.counts[mask] - 1), _MIN_VARIANCE
        )
        return variances

    def class_distribution_for_split(self, threshold: float) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate class counts on each side of ``value <= threshold``."""
        variances = self._variances()
        left = np.zeros_like(self.counts)
        right = np.zeros_like(self.counts)
        for label in range(len(self.counts)):
            if self.counts[label] == 0:
                continue
            z = (threshold - self.means[label]) / math.sqrt(variances[label])
            probability_left = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
            left[label] = self.counts[label] * probability_left
            right[label] = self.counts[label] * (1.0 - probability_left)
        return left, right


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    proportions = counts[counts > 0] / total
    return float(-np.sum(proportions * np.log2(proportions)))


def _info_gain(parent_counts: np.ndarray, children: Sequence[np.ndarray]) -> float:
    total = parent_counts.sum()
    if total <= 0:
        return 0.0
    weighted = 0.0
    for child in children:
        child_total = child.sum()
        if child_total > 0:
            weighted += (child_total / total) * _entropy(child)
    return _entropy(parent_counts) - weighted


class _LeafNode:
    """A growing leaf with sufficient statistics."""

    def __init__(self, schema: Sequence[Attribute], n_classes: int) -> None:
        self.schema = schema
        self.n_classes = n_classes
        self.class_counts = np.zeros(n_classes)
        self.nominal_counts: List[Optional[np.ndarray]] = []
        self.numeric_stats: List[Optional[_GaussianPerClass]] = []
        for attribute in schema:
            if attribute.is_nominal:
                self.nominal_counts.append(np.zeros((attribute.n_values, n_classes)))
                self.numeric_stats.append(None)
            else:
                self.nominal_counts.append(None)
                self.numeric_stats.append(_GaussianPerClass(n_classes))
        self.n_since_last_check = 0

    def learn(self, instance: Instance) -> None:
        label = instance.y
        self.class_counts[label] += 1
        self.n_since_last_check += 1
        for index, attribute in enumerate(self.schema):
            value = instance.x[index]
            if attribute.is_nominal:
                nominal_value = int(value)
                if 0 <= nominal_value < attribute.n_values:
                    self.nominal_counts[index][nominal_value, label] += 1
            else:
                self.numeric_stats[index].update(label, float(value))

    def predict(self) -> np.ndarray:
        total = self.class_counts.sum()
        if total == 0:
            return np.full(self.n_classes, 1.0 / self.n_classes)
        return self.class_counts / total

    def best_splits(self) -> List[Tuple[float, int, Optional[float]]]:
        """Rank candidate splits as ``(gain, attribute_index, threshold)``."""
        candidates: List[Tuple[float, int, Optional[float]]] = []
        for index, attribute in enumerate(self.schema):
            if attribute.is_nominal:
                counts = self.nominal_counts[index]
                children = [counts[v] for v in range(attribute.n_values)]
                gain = _info_gain(self.class_counts, children)
                candidates.append((gain, index, None))
            else:
                stats = self.numeric_stats[index]
                for threshold in stats.candidate_thresholds():
                    left, right = stats.class_distribution_for_split(threshold)
                    gain = _info_gain(self.class_counts, [left, right])
                    candidates.append((gain, index, threshold))
        candidates.sort(key=lambda item: item[0], reverse=True)
        return candidates


class _SplitNode:
    """An internal decision node."""

    def __init__(self, attribute_index: int, threshold: Optional[float], n_branches: int) -> None:
        self.attribute_index = attribute_index
        self.threshold = threshold
        self.children: List[Optional[object]] = [None] * n_branches

    def route(self, instance: Instance) -> int:
        value = instance.x[self.attribute_index]
        if self.threshold is None:
            branch = int(value)
            return branch if 0 <= branch < len(self.children) else 0
        return 0 if float(value) <= self.threshold else 1


class HoeffdingTree(Classifier):
    """Very Fast Decision Tree classifier.

    Parameters
    ----------
    schema, n_classes:
        Stream description.
    grace_period:
        Number of instances a leaf observes between split attempts.
    split_confidence:
        ``delta`` of the Hoeffding bound (probability of choosing the wrong
        split attribute).
    tie_threshold:
        Below this bound value ties are broken and the split happens anyway.
    max_depth:
        Maximum tree depth (leaves at this depth never split).
    """

    def __init__(
        self,
        schema: Sequence[Attribute],
        n_classes: int,
        grace_period: int = 200,
        split_confidence: float = 1e-6,
        tie_threshold: float = 0.05,
        max_depth: int = 10,
    ) -> None:
        super().__init__(schema=schema, n_classes=n_classes)
        self._grace_period = grace_period
        self._split_confidence = split_confidence
        self._tie_threshold = tie_threshold
        self._max_depth = max_depth
        self._root: object = _LeafNode(self._schema, n_classes)
        self._n_leaves = 1

    @property
    def n_leaves(self) -> int:
        """Current number of leaves in the tree."""
        return self._n_leaves

    # ------------------------------------------------------------ learning

    def _learn_one(self, instance: Instance) -> None:
        leaf, parent, branch, depth = self._sort_to_leaf(instance)
        leaf.learn(instance)
        if (
            leaf.n_since_last_check >= self._grace_period
            and depth < self._max_depth
            and leaf.class_counts.max() != leaf.class_counts.sum()
        ):
            leaf.n_since_last_check = 0
            self._attempt_split(leaf, parent, branch)

    def _sort_to_leaf(self, instance: Instance):
        node = self._root
        parent: Optional[_SplitNode] = None
        branch = 0
        depth = 0
        while isinstance(node, _SplitNode):
            parent = node
            branch = node.route(instance)
            child = node.children[branch]
            if child is None:
                child = _LeafNode(self._schema, self._n_classes)
                node.children[branch] = child
                self._n_leaves += 1
            node = child
            depth += 1
        return node, parent, branch, depth

    def _hoeffding_bound(self, n: float) -> float:
        value_range = math.log2(max(self._n_classes, 2))
        return math.sqrt(
            (value_range ** 2) * math.log(1.0 / self._split_confidence) / (2.0 * n)
        )

    def _attempt_split(self, leaf: _LeafNode, parent: Optional[_SplitNode], branch: int) -> None:
        candidates = leaf.best_splits()
        if len(candidates) < 2:
            return
        best_gain, best_attribute, best_threshold = candidates[0]
        second_gain = candidates[1][0]
        n = leaf.class_counts.sum()
        if n <= 0 or best_gain <= 0.0:
            return
        bound = self._hoeffding_bound(n)
        if best_gain - second_gain > bound or bound < self._tie_threshold:
            attribute = self._schema[best_attribute]
            n_branches = 2 if not attribute.is_nominal else attribute.n_values
            split = _SplitNode(best_attribute, best_threshold, n_branches)
            for index in range(n_branches):
                split.children[index] = _LeafNode(self._schema, self._n_classes)
            self._n_leaves += n_branches - 1
            if parent is None:
                self._root = split
            else:
                parent.children[branch] = split

    # ---------------------------------------------------------- prediction

    def predict_proba_one(self, instance: Instance) -> np.ndarray:
        node = self._root
        while isinstance(node, _SplitNode):
            child = node.children[node.route(instance)]
            if child is None:
                break
            node = child
        if isinstance(node, _LeafNode):
            return node.predict()
        return np.full(self._n_classes, 1.0 / self._n_classes)

    def reset(self) -> None:
        """Drop the whole tree and start from a single empty leaf."""
        self._root = _LeafNode(self._schema, self._n_classes)
        self._n_leaves = 1
        self._n_trained = 0
