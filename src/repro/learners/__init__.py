"""Incremental learners used by the evaluation pipelines.

:class:`NaiveBayes` is the learner of the paper's Table-2 experiments;
:class:`MLPClassifier` is the CNN surrogate of the Figure-5 neural-network
experiment; the remaining learners (Hoeffding tree, perceptron, kNN) are
extensions exercised by the extra examples and benchmarks.
"""

from repro.learners.base import Classifier
from repro.learners.hoeffding_tree import HoeffdingTree
from repro.learners.knn import KnnClassifier
from repro.learners.mlp import MLPClassifier
from repro.learners.naive_bayes import NaiveBayes
from repro.learners.perceptron import OnlinePerceptron

__all__ = [
    "Classifier",
    "NaiveBayes",
    "HoeffdingTree",
    "OnlinePerceptron",
    "KnnClassifier",
    "MLPClassifier",
]
