"""Base abstractions for incremental (online) learners.

The evaluation pipelines only need a minimal protocol: a classifier can
predict the label of an instance and then learn from it (prequential,
test-then-train order).  ``reset()`` restores the untrained state, which is
what the drift-adaptation strategy of the paper's classification experiments
does whenever a detector flags a drift.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.streams.base import Attribute, Instance

__all__ = ["Classifier"]


class Classifier(abc.ABC):
    """Abstract incremental classifier.

    Parameters
    ----------
    schema:
        Attribute descriptions of the stream the classifier will consume.
    n_classes:
        Number of distinct class labels.
    """

    def __init__(self, schema: Sequence[Attribute], n_classes: int) -> None:
        self._schema = list(schema)
        self._n_classes = n_classes
        self._n_trained = 0

    @property
    def schema(self) -> List[Attribute]:
        """Attribute descriptions the classifier was built for."""
        return list(self._schema)

    @property
    def n_classes(self) -> int:
        """Number of class labels."""
        return self._n_classes

    @property
    def n_trained(self) -> int:
        """Number of instances the classifier has learned from."""
        return self._n_trained

    # ------------------------------------------------------------ protocol

    def learn_one(self, instance: Instance) -> None:
        """Update the model with one labeled instance."""
        self._learn_one(instance)
        self._n_trained += 1

    @abc.abstractmethod
    def _learn_one(self, instance: Instance) -> None:
        """Model-specific update (sub-class hook)."""

    @abc.abstractmethod
    def predict_proba_one(self, instance: Instance) -> np.ndarray:
        """Return per-class scores (not necessarily normalised) for ``instance``."""

    def predict_one(self, instance: Instance) -> int:
        """Return the most likely class label for ``instance``."""
        scores = self.predict_proba_one(instance)
        return int(np.argmax(scores))

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget everything learned so far."""

    # ------------------------------------------------------------- helpers

    def clone_untrained(self) -> "Classifier":
        """Return a fresh, untrained copy with the same configuration."""
        clone = self.__class__(schema=self._schema, n_classes=self._n_classes)
        return clone

    def evaluate_accuracy(self, instances: Sequence[Instance]) -> float:
        """Accuracy over a fixed batch of instances (no learning)."""
        if not instances:
            return 0.0
        correct = sum(
            1 for instance in instances if self.predict_one(instance) == instance.y
        )
        return correct / len(instances)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_trained={self._n_trained})"
