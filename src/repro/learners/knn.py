"""Sliding-window k-nearest-neighbours classifier — extension learner.

Keeps the most recent ``window_size`` labeled instances and predicts by
majority vote among the ``k`` closest ones.  Numeric attributes are
standardised with running statistics; nominal attributes contribute a 0/1
mismatch distance.  Useful as a non-parametric point of comparison in the
extension examples.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.learners.base import Classifier
from repro.streams.base import Attribute, Instance

__all__ = ["KnnClassifier"]


class KnnClassifier(Classifier):
    """Sliding-window kNN classifier.

    Parameters
    ----------
    schema, n_classes:
        Stream description.
    k:
        Number of neighbours used for the vote.
    window_size:
        Number of recent instances kept.
    """

    def __init__(
        self,
        schema: Sequence[Attribute],
        n_classes: int,
        k: int = 11,
        window_size: int = 1000,
    ) -> None:
        super().__init__(schema=schema, n_classes=n_classes)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if window_size < k:
            raise ConfigurationError(
                f"window_size ({window_size}) must be >= k ({k})"
            )
        self._k = k
        self._window_size = window_size
        self._numeric_mask = np.array(
            [not attribute.is_nominal for attribute in self._schema]
        )
        self._init_model()

    def _init_model(self) -> None:
        self._window: Deque[Tuple[np.ndarray, int]] = deque(maxlen=self._window_size)
        self._feature_count = 0
        self._feature_mean = np.zeros(len(self._schema))
        self._feature_m2 = np.zeros(len(self._schema))

    # ------------------------------------------------------------ learning

    def _learn_one(self, instance: Instance) -> None:
        x = np.asarray(instance.x, dtype=np.float64)
        self._feature_count += 1
        delta = x - self._feature_mean
        self._feature_mean += delta / self._feature_count
        self._feature_m2 += delta * (x - self._feature_mean)
        self._window.append((x, instance.y))

    # ---------------------------------------------------------- prediction

    def _feature_std(self) -> np.ndarray:
        if self._feature_count < 2:
            return np.ones(len(self._schema))
        return np.sqrt(
            np.maximum(self._feature_m2 / (self._feature_count - 1), 1e-12)
        )

    def predict_proba_one(self, instance: Instance) -> np.ndarray:
        if not self._window:
            return np.full(self._n_classes, 1.0 / self._n_classes)
        std = self._feature_std()
        query = np.asarray(instance.x, dtype=np.float64)
        stored = np.stack([x for x, _ in self._window])
        labels = np.array([y for _, y in self._window])

        scaled_diff = (stored - query) / std
        numeric_part = np.sum((scaled_diff[:, self._numeric_mask]) ** 2, axis=1)
        nominal_part = np.sum(
            stored[:, ~self._numeric_mask] != query[~self._numeric_mask], axis=1
        ).astype(np.float64)
        distances = numeric_part + nominal_part

        k = min(self._k, len(self._window))
        nearest = np.argpartition(distances, k - 1)[:k]
        votes = np.bincount(labels[nearest], minlength=self._n_classes).astype(np.float64)
        return votes / votes.sum()

    def reset(self) -> None:
        """Drop the stored window and the feature statistics."""
        self._init_model()
        self._n_trained = 0
