"""Small numpy multi-layer perceptron — the CNN surrogate of the NN experiment.

The paper's Figure-5 experiment pre-trains a CNN on CIFAR-10, streams batches
of 32 images, feeds the per-batch loss to a drift detector, and fine-tunes the
model for three epochs whenever a drift is flagged.  The detector only ever
sees the *loss sequence*, so the essential requirements on the learner are:

* it can be pre-trained to a good accuracy on a multi-class problem,
* its loss jumps when the labels of two classes are swapped (concept drift),
* fine-tuning on post-drift batches brings the loss back down.

:class:`MLPClassifier` — a two-hidden-layer ReLU network with softmax output
trained by mini-batch SGD with momentum — satisfies all three on the synthetic
image-like data produced by
:class:`repro.pipelines.image_stream.SyntheticImageStream`, while remaining
laptop-scale.  See DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["MLPClassifier"]


class MLPClassifier:
    """Mini-batch MLP classifier with a cross-entropy loss.

    Parameters
    ----------
    n_features:
        Input dimensionality.
    n_classes:
        Number of output classes.
    hidden_sizes:
        Sizes of the hidden layers.
    learning_rate:
        SGD step size.
    momentum:
        Classical momentum coefficient.
    max_grad_norm:
        Per-batch gradient-norm clip; keeps fine-tuning stable when the loss
        spikes right after a concept drift (set to 0 to disable clipping).
    seed:
        Seed of the weight initialisation.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        hidden_sizes: Sequence[int] = (64, 32),
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        max_grad_norm: float = 5.0,
        seed: int = 1,
    ) -> None:
        if n_features < 1 or n_classes < 2:
            raise ConfigurationError("need n_features >= 1 and n_classes >= 2")
        if not hidden_sizes:
            raise ConfigurationError("need at least one hidden layer")
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be > 0, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if max_grad_norm < 0.0:
            raise ConfigurationError(
                f"max_grad_norm must be >= 0, got {max_grad_norm}"
            )
        self._n_features = n_features
        self._n_classes = n_classes
        self._hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self._learning_rate = learning_rate
        self._momentum = momentum
        self._max_grad_norm = max_grad_norm
        self._seed = seed
        self._init_weights()

    def _init_weights(self) -> None:
        rng = np.random.default_rng(self._seed)
        sizes = [self._n_features, *self._hidden_sizes, self._n_classes]
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._weight_velocity: List[np.ndarray] = []
        self._bias_velocity: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))
            self._weight_velocity.append(np.zeros((fan_in, fan_out)))
            self._bias_velocity.append(np.zeros(fan_out))
        self._n_batches_trained = 0

    # ----------------------------------------------------------- properties

    @property
    def n_features(self) -> int:
        """Input dimensionality."""
        return self._n_features

    @property
    def n_classes(self) -> int:
        """Number of output classes."""
        return self._n_classes

    @property
    def n_batches_trained(self) -> int:
        """Number of mini-batches the network has been trained on."""
        return self._n_batches_trained

    # ------------------------------------------------------------- forward

    def _forward(self, x: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        activations = [x]
        hidden = x
        for layer in range(len(self._weights) - 1):
            hidden = hidden @ self._weights[layer] + self._biases[layer]
            hidden = np.maximum(hidden, 0.0)
            activations.append(hidden)
        logits = hidden @ self._weights[-1] + self._biases[-1]
        return activations, logits

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exponent = np.exp(shifted)
        return exponent / exponent.sum(axis=1, keepdims=True)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of inputs."""
        _, logits = self._forward(np.atleast_2d(x))
        return self._softmax(logits)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels for a batch of inputs."""
        return np.argmax(self.predict_proba(x), axis=1)

    def evaluate_batch(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
        """Return ``(cross_entropy_loss, accuracy)`` for a batch without training."""
        probabilities = self.predict_proba(x)
        y = np.asarray(y, dtype=np.int64)
        batch = np.arange(len(y))
        losses = -np.log(np.clip(probabilities[batch, y], 1e-12, 1.0))
        accuracy = float(np.mean(np.argmax(probabilities, axis=1) == y))
        return float(np.mean(losses)), accuracy

    # ------------------------------------------------------------ training

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One SGD step on a mini-batch; returns the pre-update loss."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.int64)
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError("x and y must have the same number of rows")

        activations, logits = self._forward(x)
        probabilities = self._softmax(logits)
        batch = np.arange(len(y))
        loss = float(np.mean(-np.log(np.clip(probabilities[batch, y], 1e-12, 1.0))))

        # Backward pass.
        grad_logits = probabilities.copy()
        grad_logits[batch, y] -= 1.0
        grad_logits /= len(y)

        grad = grad_logits
        gradients = []
        for layer in range(len(self._weights) - 1, -1, -1):
            grad_weight = activations[layer].T @ grad
            grad_bias = grad.sum(axis=0)
            if layer > 0:
                grad = grad @ self._weights[layer].T
                grad = grad * (activations[layer] > 0.0)
            gradients.append((layer, grad_weight, grad_bias))

        if self._max_grad_norm > 0.0:
            total_norm = np.sqrt(
                sum(
                    float(np.sum(gw ** 2)) + float(np.sum(gb ** 2))
                    for _, gw, gb in gradients
                )
            )
            if total_norm > self._max_grad_norm:
                scale = self._max_grad_norm / total_norm
                gradients = [
                    (layer, gw * scale, gb * scale) for layer, gw, gb in gradients
                ]

        for layer, grad_weight, grad_bias in gradients:
            self._weight_velocity[layer] = (
                self._momentum * self._weight_velocity[layer]
                - self._learning_rate * grad_weight
            )
            self._bias_velocity[layer] = (
                self._momentum * self._bias_velocity[layer]
                - self._learning_rate * grad_bias
            )
            self._weights[layer] += self._weight_velocity[layer]
            self._biases[layer] += self._bias_velocity[layer]

        self._n_batches_trained += 1
        return loss

    def pretrain(
        self,
        x: np.ndarray,
        y: np.ndarray,
        n_epochs: int = 20,
        batch_size: int = 32,
        seed: Optional[int] = None,
    ) -> float:
        """Train on a fixed dataset for ``n_epochs``; return the final accuracy."""
        rng = np.random.default_rng(self._seed if seed is None else seed)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        n = x.shape[0]
        for _ in range(n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start:start + batch_size]
                self.train_batch(x[batch], y[batch])
        _, accuracy = self.evaluate_batch(x, y)
        return accuracy

    def reset(self) -> None:
        """Re-initialise all weights (forget the training)."""
        self._init_weights()
