"""F-test for the equality of two variances.

OPTWIN flags a concept drift when the variance of the "new" sub-window is
statistically larger than the variance of the "historical" sub-window
(Equation 6 of the paper).  A small constant ``eta`` is added to both standard
deviations before squaring to avoid division by zero, mirroring Algorithm 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.stats.distributions import f_cdf, f_ppf

__all__ = ["FTestResult", "f_statistic", "f_test"]

#: Default stabiliser added to standard deviations (``eta`` in Algorithm 1).
DEFAULT_ETA = 1e-5


@dataclass(frozen=True)
class FTestResult:
    """Outcome of a one-sided F-test for ``var_new > var_hist``.

    Attributes
    ----------
    statistic:
        The variance ratio ``(sigma_new + eta)^2 / (sigma_hist + eta)^2``.
    dfn, dfd:
        Numerator and denominator degrees of freedom.
    p_value:
        One-sided p-value (probability of a ratio at least this large under
        the null hypothesis of equal variances).
    critical_value:
        The F-distribution PPF at the requested confidence.
    significant:
        Whether ``statistic > critical_value``.
    """

    statistic: float
    dfn: float
    dfd: float
    p_value: float
    critical_value: float
    significant: bool


def f_statistic(std_new: float, std_hist: float, eta: float = DEFAULT_ETA) -> float:
    """Return the stabilised variance ratio used by OPTWIN's F-test."""
    if std_new < 0 or std_hist < 0:
        raise ConfigurationError("standard deviations must be non-negative")
    if eta < 0:
        raise ConfigurationError(f"eta must be non-negative, got {eta}")
    numerator = (std_new + eta) ** 2
    denominator = (std_hist + eta) ** 2
    if denominator == 0.0:
        return math.inf
    return numerator / denominator


def f_test(
    std_new: float,
    n_new: int,
    std_hist: float,
    n_hist: int,
    confidence: float = 0.99,
    eta: float = DEFAULT_ETA,
) -> FTestResult:
    """Run the one-sided F-test ``H1: var_new > var_hist``.

    Parameters
    ----------
    std_new, n_new:
        Standard deviation and size of the "new" sub-window (numerator).
    std_hist, n_hist:
        Standard deviation and size of the "historical" sub-window
        (denominator).
    confidence:
        Confidence level for the critical value.
    eta:
        Stabiliser added to both standard deviations (Algorithm 1's ``eta``).
    """
    if n_new < 2 or n_hist < 2:
        raise ConfigurationError("both sub-windows need at least two observations")
    statistic = f_statistic(std_new, std_hist, eta)
    dfn = float(n_new - 1)
    dfd = float(n_hist - 1)
    critical = f_ppf(confidence, dfn, dfd)
    if math.isinf(statistic):
        p_value = 0.0
    else:
        p_value = 1.0 - f_cdf(statistic, dfn, dfd)
        p_value = min(max(p_value, 0.0), 1.0)
    return FTestResult(
        statistic=statistic,
        dfn=dfn,
        dfd=dfd,
        p_value=p_value,
        critical_value=critical,
        significant=statistic > critical,
    )
