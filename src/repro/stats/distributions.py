"""Probability point functions (PPF) for the Student-t and F distributions.

OPTWIN's optimal-cut equation (Equation 1 in the paper) is written in terms of
``t_ppf`` and ``f_ppf``, the inverse CDFs of the Student-t and F distributions.
These wrappers delegate to :mod:`scipy.stats` and add:

* argument validation with library-specific exceptions,
* a small memoisation cache (the same ``(confidence, df)`` pairs are queried
  for every window length during table pre-computation),
* pure-Python fallbacks (normal approximations) used only if SciPy were
  unavailable; they keep the module importable in constrained environments and
  are exercised directly by the unit tests.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.exceptions import ConfigurationError

try:  # pragma: no cover - scipy is a hard dependency in practice
    from scipy import special as _scipy_special
except ImportError:  # pragma: no cover
    _scipy_special = None

__all__ = [
    "t_ppf",
    "f_ppf",
    "t_cdf",
    "f_cdf",
    "normal_ppf",
    "normal_cdf",
    "HAVE_SCIPY",
]

HAVE_SCIPY = _scipy_special is not None


def _validate_confidence(confidence: float) -> None:
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")


def normal_cdf(x: float) -> float:
    """CDF of the standard normal distribution."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def normal_ppf(p: float) -> float:
    """Inverse CDF of the standard normal distribution.

    Uses Acklam's rational approximation (maximum absolute error about 1e-9),
    which is more than accurate enough for threshold computation.
    """
    _validate_confidence(p)
    # Coefficients of Acklam's approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    p_high = 1.0 - p_low
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


@lru_cache(maxsize=65536)
def t_ppf(confidence: float, df: float) -> float:
    """PPF of the Student-t distribution at ``confidence`` with ``df`` d.o.f.

    Parameters
    ----------
    confidence:
        Cumulative probability in ``(0, 1)``.
    df:
        Degrees of freedom, must be positive.  Fractional values are allowed
        (Welch's correction produces non-integer degrees of freedom).
    """
    _validate_confidence(confidence)
    if df <= 0:
        raise ConfigurationError(f"degrees of freedom must be > 0, got {df}")
    if _scipy_special is not None:
        # scipy.special.stdtrit is the direct (and much faster) equivalent of
        # scipy.stats.t.ppf for scalar arguments.
        return float(_scipy_special.stdtrit(df, confidence))
    # Fallback: Cornish-Fisher style expansion around the normal quantile.
    z = normal_ppf(confidence)
    g1 = (z ** 3 + z) / 4.0
    g2 = (5.0 * z ** 5 + 16.0 * z ** 3 + 3.0 * z) / 96.0
    g3 = (3.0 * z ** 7 + 19.0 * z ** 5 + 17.0 * z ** 3 - 15.0 * z) / 384.0
    return z + g1 / df + g2 / df ** 2 + g3 / df ** 3


@lru_cache(maxsize=65536)
def f_ppf(confidence: float, dfn: float, dfd: float) -> float:
    """PPF of the F distribution.

    Parameters
    ----------
    confidence:
        Cumulative probability in ``(0, 1)``.
    dfn, dfd:
        Numerator and denominator degrees of freedom, both positive.
    """
    _validate_confidence(confidence)
    if dfn <= 0 or dfd <= 0:
        raise ConfigurationError(
            f"degrees of freedom must be > 0, got dfn={dfn}, dfd={dfd}"
        )
    if _scipy_special is not None:
        return float(_scipy_special.fdtri(dfn, dfd, confidence))
    # Fallback: Wilson-Hilferty style approximation via the normal quantile.
    z = normal_ppf(confidence)
    lam = (z * z - 3.0) / 6.0
    h = 2.0 / (1.0 / (dfn - 1.0 + 1e-12) + 1.0 / (dfd - 1.0 + 1e-12))
    w = z * math.sqrt(h + lam) / h - (lam + 5.0 / 6.0 - 2.0 / (3.0 * h)) * (
        1.0 / (dfn - 1.0 + 1e-12) - 1.0 / (dfd - 1.0 + 1e-12)
    )
    return math.exp(2.0 * w)


def t_cdf(x: float, df: float) -> float:
    """CDF of the Student-t distribution."""
    if df <= 0:
        raise ConfigurationError(f"degrees of freedom must be > 0, got {df}")
    if _scipy_special is not None:
        return float(_scipy_special.stdtr(df, x))
    # Fallback via the normal approximation (adequate for large df).
    return normal_cdf(x * (1.0 - 1.0 / (4.0 * df)) / math.sqrt(1.0 + x * x / (2.0 * df)))


def f_cdf(x: float, dfn: float, dfd: float) -> float:
    """CDF of the F distribution."""
    if dfn <= 0 or dfd <= 0:
        raise ConfigurationError(
            f"degrees of freedom must be > 0, got dfn={dfn}, dfd={dfd}"
        )
    if x <= 0:
        return 0.0
    if _scipy_special is not None:
        return float(_scipy_special.fdtr(dfn, dfd, x))
    # Fallback: Paulson approximation mapping F to a standard normal deviate.
    num = (1.0 - 2.0 / (9.0 * dfd)) * x ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * dfn))
    den = math.sqrt(2.0 / (9.0 * dfn) + (x ** (2.0 / 3.0)) * 2.0 / (9.0 * dfd))
    return normal_cdf(num / den)
