"""Welch's unequal-variance t-test.

OPTWIN applies the unequal-variance *t*-test (Ruxton 2006) to the two
sub-windows ``W_hist`` and ``W_new`` of its sliding window (Equation 3 of the
paper) and uses the Welch–Satterthwaite degrees of freedom (Equation 12).

The functions here operate on summary statistics (count, mean, variance)
rather than raw samples so that detectors can feed them from incremental
accumulators without materialising the sub-windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.stats.distributions import t_cdf, t_ppf

__all__ = ["WelchResult", "welch_statistic", "welch_degrees_of_freedom", "welch_t_test"]


@dataclass(frozen=True)
class WelchResult:
    """Outcome of a Welch t-test between two summarised samples.

    Attributes
    ----------
    statistic:
        The t statistic ``(mean_a - mean_b) / sqrt(var_a/n_a + var_b/n_b)``.
    degrees_of_freedom:
        Welch–Satterthwaite approximation of the degrees of freedom.
    p_value:
        Two-sided p-value of the test.
    critical_value:
        The t-distribution PPF at the requested confidence (one-sided).
    significant:
        Whether ``|statistic| > critical_value``.
    """

    statistic: float
    degrees_of_freedom: float
    p_value: float
    critical_value: float
    significant: bool


def welch_statistic(
    mean_a: float,
    var_a: float,
    n_a: int,
    mean_b: float,
    var_b: float,
    n_b: int,
) -> float:
    """Return Welch's t statistic for two summarised samples.

    A zero pooled standard error (both variances zero) returns ``0.0`` when the
    means are also equal and ``inf`` (signed) otherwise, so callers can treat a
    deterministic level shift as maximally significant.
    """
    if n_a < 1 or n_b < 1:
        raise ConfigurationError("both samples need at least one observation")
    pooled = var_a / n_a + var_b / n_b
    diff = mean_a - mean_b
    if pooled <= 0.0:
        # Both variances are zero (constant sub-windows).  A difference at the
        # level of floating-point rounding is not a real level shift.
        tolerance = 1e-9 * max(1.0, abs(mean_a), abs(mean_b))
        if abs(diff) <= tolerance:
            return 0.0
        return math.inf if diff > 0 else -math.inf
    return diff / math.sqrt(pooled)


def welch_degrees_of_freedom(
    var_a: float,
    n_a: int,
    var_b: float,
    n_b: int,
) -> float:
    """Welch–Satterthwaite degrees of freedom (Equation 12 of the paper).

    Falls back to ``n_a + n_b - 2`` when both variances are zero (the formula
    is 0/0 in that case) and clamps the result to at least 1.0 so that it can
    always be used as a t-distribution parameter.
    """
    if n_a < 2 or n_b < 2:
        raise ConfigurationError("both samples need at least two observations")
    term_a = var_a / n_a
    term_b = var_b / n_b
    numerator = (term_a + term_b) ** 2
    if numerator <= 0.0:
        return float(max(n_a + n_b - 2, 1))
    denominator = (term_a ** 2) / (n_a - 1) + (term_b ** 2) / (n_b - 1)
    if denominator <= 0.0:
        return float(max(n_a + n_b - 2, 1))
    return max(numerator / denominator, 1.0)


def welch_t_test(
    mean_a: float,
    var_a: float,
    n_a: int,
    mean_b: float,
    var_b: float,
    n_b: int,
    confidence: float = 0.99,
) -> WelchResult:
    """Run a full Welch t-test from summary statistics.

    Parameters
    ----------
    mean_a, var_a, n_a:
        Mean, unbiased variance, and size of the first sample (``W_hist``).
    mean_b, var_b, n_b:
        Mean, unbiased variance, and size of the second sample (``W_new``).
    confidence:
        One-sided confidence level used for the critical value.
    """
    statistic = welch_statistic(mean_a, var_a, n_a, mean_b, var_b, n_b)
    df = welch_degrees_of_freedom(var_a, n_a, var_b, n_b)
    critical = t_ppf(confidence, df)
    if math.isinf(statistic):
        p_value = 0.0
    else:
        p_value = 2.0 * (1.0 - t_cdf(abs(statistic), df))
        p_value = min(max(p_value, 0.0), 1.0)
    return WelchResult(
        statistic=statistic,
        degrees_of_freedom=df,
        p_value=p_value,
        critical_value=critical,
        significant=abs(statistic) > critical,
    )
