"""Statistical test of equal proportions (used by STEPD).

STEPD (Nishida & Yamauchi 2007) compares the accuracy of a learner over a
recent window with its accuracy over all earlier observations using the
classic two-sample test of equal proportions with a continuity correction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.stats.distributions import normal_cdf

__all__ = ["ProportionTestResult", "equal_proportions_test"]


@dataclass(frozen=True)
class ProportionTestResult:
    """Outcome of the two-sample equality-of-proportions test.

    Attributes
    ----------
    statistic:
        The (continuity-corrected) z statistic.
    p_value:
        One-sided p-value for "the recent proportion is lower".
    """

    statistic: float
    p_value: float


def equal_proportions_test(
    successes_recent: float,
    n_recent: int,
    successes_older: float,
    n_older: int,
) -> ProportionTestResult:
    """Test whether the recent success proportion dropped below the older one.

    Follows the STEPD formulation: the statistic compares
    ``p_older = successes_older / n_older`` against
    ``p_recent = successes_recent / n_recent`` with Yates' continuity
    correction; large positive values indicate that recent accuracy fell.

    Parameters
    ----------
    successes_recent, n_recent:
        Number of correct predictions and total predictions in the recent
        window.
    successes_older, n_older:
        Number of correct predictions and total predictions in the older
        segment.
    """
    if n_recent < 1 or n_older < 1:
        raise ConfigurationError("both segments need at least one observation")
    if not 0 <= successes_recent <= n_recent:
        raise ConfigurationError("successes_recent must lie in [0, n_recent]")
    if not 0 <= successes_older <= n_older:
        raise ConfigurationError("successes_older must lie in [0, n_older]")

    p_recent = successes_recent / n_recent
    p_older = successes_older / n_older
    pooled = (successes_recent + successes_older) / (n_recent + n_older)
    correction = 0.5 * (1.0 / n_recent + 1.0 / n_older)
    variance = pooled * (1.0 - pooled) * (1.0 / n_recent + 1.0 / n_older)
    if variance <= 0.0:
        # Both segments are all-success or all-failure: no evidence of change.
        return ProportionTestResult(statistic=0.0, p_value=1.0)
    statistic = (abs(p_older - p_recent) - correction) / math.sqrt(variance)
    # One-sided: only a *drop* in recent accuracy counts as a change.
    if p_recent >= p_older:
        statistic = min(statistic, 0.0)
    p_value = 1.0 - normal_cdf(statistic)
    return ProportionTestResult(statistic=statistic, p_value=p_value)
