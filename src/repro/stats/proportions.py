"""Statistical test of equal proportions (used by STEPD).

STEPD (Nishida & Yamauchi 2007) compares the accuracy of a learner over a
recent window with its accuracy over all earlier observations using the
classic two-sample test of equal proportions with a continuity correction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stats.distributions import normal_cdf

__all__ = [
    "ProportionTestResult",
    "equal_proportions_test",
    "equal_proportions_statistics",
]


@dataclass(frozen=True)
class ProportionTestResult:
    """Outcome of the two-sample equality-of-proportions test.

    Attributes
    ----------
    statistic:
        The (continuity-corrected) z statistic.
    p_value:
        One-sided p-value for "the recent proportion is lower".
    """

    statistic: float
    p_value: float


def equal_proportions_test(
    successes_recent: float,
    n_recent: int,
    successes_older: float,
    n_older: int,
) -> ProportionTestResult:
    """Test whether the recent success proportion dropped below the older one.

    Follows the STEPD formulation: the statistic compares
    ``p_older = successes_older / n_older`` against
    ``p_recent = successes_recent / n_recent`` with Yates' continuity
    correction; large positive values indicate that recent accuracy fell.

    Parameters
    ----------
    successes_recent, n_recent:
        Number of correct predictions and total predictions in the recent
        window.
    successes_older, n_older:
        Number of correct predictions and total predictions in the older
        segment.
    """
    if n_recent < 1 or n_older < 1:
        raise ConfigurationError("both segments need at least one observation")
    if not 0 <= successes_recent <= n_recent:
        raise ConfigurationError("successes_recent must lie in [0, n_recent]")
    if not 0 <= successes_older <= n_older:
        raise ConfigurationError("successes_older must lie in [0, n_older]")

    p_recent = successes_recent / n_recent
    p_older = successes_older / n_older
    pooled = (successes_recent + successes_older) / (n_recent + n_older)
    correction = 0.5 * (1.0 / n_recent + 1.0 / n_older)
    variance = pooled * (1.0 - pooled) * (1.0 / n_recent + 1.0 / n_older)
    if variance <= 0.0:
        # Both segments are all-success or all-failure: no evidence of change.
        return ProportionTestResult(statistic=0.0, p_value=1.0)
    statistic = (abs(p_older - p_recent) - correction) / math.sqrt(variance)
    # One-sided: only a *drop* in recent accuracy counts as a change.
    if p_recent >= p_older:
        statistic = min(statistic, 0.0)
    p_value = 1.0 - normal_cdf(statistic)
    return ProportionTestResult(statistic=statistic, p_value=p_value)


def equal_proportions_statistics(
    successes_recent: "np.ndarray",
    n_recent: "np.ndarray",
    successes_older: "np.ndarray",
    n_older: "np.ndarray",
) -> "np.ndarray":
    """Vectorised z statistics of :func:`equal_proportions_test`.

    Evaluates the continuity-corrected two-proportion statistic for a whole
    chunk of ``(recent, older)`` segment summaries at once with exactly the
    arithmetic of the scalar test, so each returned element is bit-identical
    to ``equal_proportions_test(...).statistic`` for the same inputs — with
    one deliberate exception: degenerate positions (pooled variance ``<= 0``,
    where the scalar test short-circuits to ``statistic=0, p_value=1``) are
    reported as ``-inf`` so that their one-sided upper-tail p-value is exactly
    the scalar 1.0 under any threshold comparison.

    Inputs broadcast against each other; callers are responsible for the
    validation the scalar test performs (counts ``>= 1`` and success counts
    within range).
    """
    successes_recent = np.asarray(successes_recent, dtype=np.float64)
    successes_older = np.asarray(successes_older, dtype=np.float64)
    n_recent = np.asarray(n_recent, dtype=np.float64)
    n_older = np.asarray(n_older, dtype=np.float64)

    p_recent = successes_recent / n_recent
    p_older = successes_older / n_older
    pooled = (successes_recent + successes_older) / (n_recent + n_older)
    inverse = 1.0 / n_recent + 1.0 / n_older
    correction = 0.5 * inverse
    variance = pooled * (1.0 - pooled) * inverse
    degenerate = variance <= 0.0
    safe_variance = np.where(degenerate, 1.0, variance)
    statistic = (np.abs(p_older - p_recent) - correction) / np.sqrt(safe_variance)
    statistic = np.where(
        p_recent >= p_older, np.minimum(statistic, 0.0), statistic
    )
    return np.where(degenerate, -np.inf, statistic)
