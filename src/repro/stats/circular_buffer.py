"""Fixed-capacity circular buffer of floats.

OPTWIN (Section 3.4 of the paper) bounds its sliding window by ``w_max`` and
notes that a circular array gives O(1) insertions at the end, deletions from
the beginning, and random access.  This module provides exactly that data
structure, backed by a pre-allocated ``numpy`` array.

The buffer intentionally exposes a small, list-like API (``append``,
``popleft``, ``__getitem__``, ``__len__``, ``__iter__``) so that detector code
reads naturally.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from repro.exceptions import ConfigurationError, NotEnoughDataError

__all__ = ["CircularBuffer"]


class CircularBuffer:
    """A bounded FIFO buffer of floats with O(1) append/popleft/indexing.

    Parameters
    ----------
    capacity:
        Maximum number of elements the buffer can hold.  Appending to a full
        buffer raises ``IndexError`` (callers are expected to ``popleft``
        first); this makes accidental silent overwrites impossible.

    Examples
    --------
    >>> buf = CircularBuffer(3)
    >>> buf.append(1.0); buf.append(2.0)
    >>> len(buf)
    2
    >>> buf.popleft()
    1.0
    >>> buf[0]
    2.0
    """

    __slots__ = ("_capacity", "_data", "_start", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._data = np.zeros(self._capacity, dtype=np.float64)
        self._start = 0
        self._size = 0

    @property
    def capacity(self) -> int:
        """Maximum number of elements the buffer can hold."""
        return self._capacity

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        """Whether the buffer currently holds ``capacity`` elements."""
        return self._size == self._capacity

    @property
    def is_empty(self) -> bool:
        """Whether the buffer holds no elements."""
        return self._size == 0

    def append(self, value: float) -> None:
        """Append ``value`` at the logical end of the buffer."""
        if self._size == self._capacity:
            raise IndexError("append to a full CircularBuffer; popleft first")
        index = (self._start + self._size) % self._capacity
        self._data[index] = value
        self._size += 1

    def popleft(self) -> float:
        """Remove and return the oldest element."""
        if self._size == 0:
            raise NotEnoughDataError("popleft from an empty CircularBuffer")
        value = float(self._data[self._start])
        self._start = (self._start + 1) % self._capacity
        self._size -= 1
        return value

    def clear(self) -> None:
        """Remove every element (capacity is unchanged)."""
        self._start = 0
        self._size = 0

    def _physical_index(self, index: int) -> int:
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        return (self._start + index) % self._capacity

    def __getitem__(self, index: int) -> float:
        return float(self._data[self._physical_index(index)])

    def __setitem__(self, index: int, value: float) -> None:
        self._data[self._physical_index(index)] = value

    def __iter__(self) -> Iterator[float]:
        for logical in range(self._size):
            yield float(self._data[(self._start + logical) % self._capacity])

    def extend(self, values: Iterable[float]) -> None:
        """Append every value from ``values`` in order."""
        for value in values:
            self.append(value)

    def to_list(self) -> List[float]:
        """Return the contents, oldest first, as a plain list."""
        return list(self)

    def to_array(self) -> np.ndarray:
        """Return the contents, oldest first, as a contiguous numpy array."""
        if self._size == 0:
            return np.empty(0, dtype=np.float64)
        end = self._start + self._size
        if end <= self._capacity:
            return self._data[self._start:end].copy()
        first = self._data[self._start:]
        second = self._data[: end - self._capacity]
        return np.concatenate([first, second])

    def slice_array(self, start: int, stop: int) -> np.ndarray:
        """Return elements ``[start, stop)`` (logical indices) as an array."""
        if start < 0 or stop > self._size or start > stop:
            raise IndexError(
                f"invalid slice [{start}, {stop}) for buffer of size {self._size}"
            )
        length = stop - start
        if length == 0:
            return np.empty(0, dtype=np.float64)
        physical_start = (self._start + start) % self._capacity
        physical_end = physical_start + length
        if physical_end <= self._capacity:
            return self._data[physical_start:physical_end].copy()
        first = self._data[physical_start:]
        second = self._data[: physical_end - self._capacity]
        return np.concatenate([first, second])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(f"{v:.4g}" for v in list(self)[:6])
        suffix = ", ..." if self._size > 6 else ""
        return (
            f"CircularBuffer(capacity={self._capacity}, size={self._size}, "
            f"values=[{preview}{suffix}])"
        )
