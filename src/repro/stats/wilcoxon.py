"""One-tailed Wilcoxon signed-rank test.

Section 4.1 of the paper compares the per-run F1-scores of OPTWIN against the
regression-capable baselines (ADWIN, STEPD) with a one-tailed Wilcoxon
signed-rank test at ``alpha = 0.05``.  This module implements the test from
scratch (normal approximation with tie and zero handling, plus an exact
enumeration for small samples) so the significance analysis does not depend on
``scipy.stats.wilcoxon`` behaviour changes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.stats.distributions import normal_cdf

__all__ = ["WilcoxonResult", "wilcoxon_signed_rank"]

#: Below this many non-zero differences the exact null distribution is used.
_EXACT_LIMIT = 12


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a one-tailed Wilcoxon signed-rank test.

    Attributes
    ----------
    statistic:
        Sum of ranks of the *negative* differences (``W-``); small values
        support the alternative "sample_a > sample_b".
    p_value:
        One-tailed p-value for the alternative ``a > b``.
    n_effective:
        Number of non-zero paired differences actually used.
    significant:
        Whether ``p_value < alpha``.
    alpha:
        Significance level the decision was taken at.
    """

    statistic: float
    p_value: float
    n_effective: int
    significant: bool
    alpha: float


def _rank_with_ties(values: Sequence[float]) -> list:
    """Return average ranks (1-based) of ``values``, handling ties."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def _exact_p_value(signed_ranks: Sequence[float], w_minus: float) -> float:
    """Exact one-tailed p-value by enumerating all sign assignments."""
    ranks = [abs(r) for r in signed_ranks]
    n = len(ranks)
    total = 0
    at_most = 0
    for signs in itertools.product((0, 1), repeat=n):
        w = sum(rank for rank, sign in zip(ranks, signs) if sign)
        total += 1
        if w <= w_minus + 1e-12:
            at_most += 1
    return at_most / total


def wilcoxon_signed_rank(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    alpha: float = 0.05,
) -> WilcoxonResult:
    """Test the alternative hypothesis that ``sample_a`` tends to exceed ``sample_b``.

    Parameters
    ----------
    sample_a, sample_b:
        Paired observations (e.g. per-experiment F1-scores of two detectors).
    alpha:
        Significance level for the ``significant`` flag.
    """
    if len(sample_a) != len(sample_b):
        raise ConfigurationError("paired samples must have the same length")
    if len(sample_a) < 3:
        raise ConfigurationError("need at least three pairs for the Wilcoxon test")
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")

    differences = [a - b for a, b in zip(sample_a, sample_b)]
    non_zero = [d for d in differences if d != 0.0]
    if not non_zero:
        # Identical samples: no evidence for the alternative.
        return WilcoxonResult(
            statistic=0.0, p_value=1.0, n_effective=0, significant=False, alpha=alpha
        )

    abs_diffs = [abs(d) for d in non_zero]
    ranks = _rank_with_ties(abs_diffs)
    signed_ranks = [r if d > 0 else -r for r, d in zip(ranks, non_zero)]
    w_minus = sum(r for r in signed_ranks if r < 0) * -1.0
    n = len(non_zero)

    if n <= _EXACT_LIMIT:
        p_value = _exact_p_value(signed_ranks, w_minus)
    else:
        mean = n * (n + 1) / 4.0
        variance = n * (n + 1) * (2 * n + 1) / 24.0
        # Tie correction.
        tie_groups = {}
        for rank in ranks:
            tie_groups[rank] = tie_groups.get(rank, 0) + 1
        correction = sum(t ** 3 - t for t in tie_groups.values() if t > 1) / 48.0
        variance -= correction
        if variance <= 0:
            p_value = 1.0
        else:
            z = (w_minus - mean + 0.5) / math.sqrt(variance)
            p_value = normal_cdf(z)

    p_value = min(max(p_value, 0.0), 1.0)
    return WilcoxonResult(
        statistic=w_minus,
        p_value=p_value,
        n_effective=n,
        significant=p_value < alpha,
        alpha=alpha,
    )
