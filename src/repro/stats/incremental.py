"""Incremental (online) mean and variance estimators.

The OPTWIN paper (Section 3.4) points out that the means and standard
deviations of the two sub-windows do not need to be recomputed from scratch at
every step: they can be maintained incrementally.  This module provides three
flavours of incremental statistics:

``RunningStats``
    Classic Welford accumulator; supports only additions.  Used by detectors
    such as DDM/EDDM that never remove observations between resets.

``WindowedStats``
    Sum/sum-of-squares accumulator that supports both additions and removals,
    which is what a sliding window needs.

``PrefixStats``
    Prefix sums over a sliding window so that the mean/variance of *any*
    contiguous sub-window can be answered in O(1).  OPTWIN uses this to get the
    statistics of ``W_hist`` and ``W_new`` at the optimal cut without scanning.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

import numpy as np

from repro.exceptions import NotEnoughDataError, SnapshotError

__all__ = [
    "RunningStats",
    "WindowedStats",
    "PrefixStats",
    "seeded_segment_means",
]


def seeded_segment_means(
    base_sum: float, base_count: int, segment: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Cumulative ``(sums, counts, means)`` of a segment seeded by prior state.

    ``np.add.accumulate`` seeded with ``base_sum`` performs the same
    left-to-right additions as a scalar ``total += value`` loop continuing
    from that state, so the returned running means are bit-identical to the
    scalar path — the property the detectors' batched fast paths (DDM,
    Page-Hinkley) rely on for their golden-equivalence contract.
    """
    count = segment.shape[0]
    accumulator = np.empty(count + 1, dtype=np.float64)
    accumulator[0] = base_sum
    accumulator[1:] = segment
    np.add.accumulate(accumulator, out=accumulator)
    sums = accumulator[1:]
    counts = (base_count + np.arange(1, count + 1)).astype(np.float64)
    return sums, counts, sums / counts


class RunningStats:
    """Welford's online algorithm for mean and variance (additions only).

    Numerically stable even for long streams of nearly identical values.

    Examples
    --------
    >>> rs = RunningStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     rs.update(x)
    >>> rs.mean
    2.0
    >>> round(rs.variance, 6)
    1.0
    """

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold ``value`` into the running statistics."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def update_many(self, values: Iterable[float]) -> None:
        """Fold every value from ``values`` into the running statistics."""
        for value in values:
            self.update(value)

    def reset(self) -> None:
        """Forget all observations."""
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when no observations were seen)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def population_variance(self) -> float:
        """Population (biased) variance."""
        if self._count < 1:
            return 0.0
        return self._m2 / self._count

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(max(self.variance, 0.0))

    @property
    def population_std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(max(self.population_variance, 0.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self._count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class WindowedStats:
    """Mean/variance over a multiset supporting additions *and* removals.

    Maintains the sum and sum of squares; removal is exact because the value
    being removed is supplied by the caller (sliding windows always know which
    element leaves).  A periodic exact recomputation is unnecessary for the
    magnitudes handled here (error rates in ``[0, 1]`` or bounded losses), but
    the accumulator clamps tiny negative variances caused by rounding.
    """

    __slots__ = ("_count", "_sum", "_sum_sq")

    def __init__(self) -> None:
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0

    def add(self, value: float) -> None:
        """Add one observation."""
        self._count += 1
        self._sum += value
        self._sum_sq += value * value

    def remove(self, value: float) -> None:
        """Remove one previously added observation."""
        if self._count == 0:
            raise NotEnoughDataError("remove from an empty WindowedStats")
        self._count -= 1
        self._sum -= value
        self._sum_sq -= value * value
        if self._count == 0:
            self._sum = 0.0
            self._sum_sq = 0.0

    def reset(self) -> None:
        """Forget all observations."""
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0

    @property
    def count(self) -> int:
        """Number of observations currently accounted for."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of the observations currently accounted for."""
        return self._sum

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self._count < 2:
            return 0.0
        mean = self._sum / self._count
        raw = (self._sum_sq - self._count * mean * mean) / (self._count - 1)
        return max(raw, 0.0)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowedStats(count={self._count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class PrefixStats:
    """Prefix sums over an ordered window for O(1) sub-window statistics.

    The window follows the pre-allocated numpy storage idiom of
    :class:`repro.stats.circular_buffer.CircularBuffer`: values and their two
    prefix-sum arrays (values and squared values) live in flat ``float64``
    arrays anchored at a dead-prefix offset, so appends write in place,
    dropping elements from the front just moves the offset, and memory is
    compacted only occasionally by slicing-and-rebasing the existing prefix
    arrays (no per-element recomputation, no list churn).

    ``mean(i, j)`` and ``variance(i, j)`` answer queries over the *logical*
    half-open range ``[i, j)`` of the current window.  :meth:`append_many`
    folds a whole chunk in with one vectorised cumulative sum whose result is
    bit-identical to element-by-element :meth:`append` calls, which is what
    lets the detectors' batched fast paths reproduce the scalar paths exactly.
    """

    __slots__ = ("_values", "_prefix", "_prefix_sq", "_offset", "_end")

    # Compact the arrays once the dead prefix reaches this many items.  The
    # compaction point is deterministic (always exactly at the threshold) so
    # scalar and batched updates drive the storage through identical states.
    _COMPACT_THRESHOLD = 8192

    #: Initial physical capacity of the value array.
    _INITIAL_CAPACITY = 64

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(int(capacity), 1)
        self._values = np.zeros(capacity, dtype=np.float64)
        self._prefix = np.zeros(capacity + 1, dtype=np.float64)
        self._prefix_sq = np.zeros(capacity + 1, dtype=np.float64)
        self._offset = 0
        self._end = 0

    def __len__(self) -> int:
        return self._end - self._offset

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._end + extra
        capacity = self._values.shape[0]
        if needed <= capacity:
            return
        # Pure copy, never a rebase: growth must not change any stored prefix
        # value, so that queries are independent of *when* the growth happened
        # (scalar and batched modes grow at different moments).
        new_capacity = max(needed, 2 * capacity)
        values = np.zeros(new_capacity, dtype=np.float64)
        prefix = np.zeros(new_capacity + 1, dtype=np.float64)
        prefix_sq = np.zeros(new_capacity + 1, dtype=np.float64)
        values[: self._end] = self._values[: self._end]
        prefix[: self._end + 1] = self._prefix[: self._end + 1]
        prefix_sq[: self._end + 1] = self._prefix_sq[: self._end + 1]
        self._values = values
        self._prefix = prefix
        self._prefix_sq = prefix_sq

    def append(self, value: float) -> None:
        """Append ``value`` at the end of the window."""
        self._ensure_capacity(1)
        end = self._end
        self._values[end] = value
        self._prefix[end + 1] = self._prefix[end] + value
        self._prefix_sq[end + 1] = self._prefix_sq[end] + value * value
        self._end = end + 1

    def append_many(self, values: "np.ndarray") -> None:
        """Append a chunk of values with one vectorised cumulative sum.

        The prefix arrays are extended by ``np.add.accumulate`` seeded with the
        current running totals, which performs the same left-to-right sequence
        of additions as repeated :meth:`append` calls and therefore produces
        bit-identical prefix sums.
        """
        chunk = np.asarray(values, dtype=np.float64)
        count = chunk.shape[0]
        if count == 0:
            return
        self._ensure_capacity(count)
        end = self._end
        self._values[end : end + count] = chunk
        prefix = self._prefix
        prefix_sq = self._prefix_sq
        prefix[end + 1 : end + count + 1] = chunk
        np.add.accumulate(
            prefix[end : end + count + 1], out=prefix[end : end + count + 1]
        )
        prefix_sq[end + 1 : end + count + 1] = chunk * chunk
        np.add.accumulate(
            prefix_sq[end : end + count + 1], out=prefix_sq[end : end + count + 1]
        )
        self._end = end + count

    def popleft(self) -> float:
        """Drop and return the oldest element of the window."""
        if len(self) == 0:
            raise NotEnoughDataError("popleft from an empty PrefixStats")
        value = float(self._values[self._offset])
        self._offset += 1
        if self._offset >= self._COMPACT_THRESHOLD:
            self._compact()
        return value

    def popleft_many(self, count: int) -> None:
        """Drop the ``count`` oldest elements (no values returned).

        Compaction fires at exactly the same dead-prefix sizes as ``count``
        individual :meth:`popleft` calls would trigger, keeping the storage
        state identical between scalar and batched execution.
        """
        if count < 0 or count > len(self):
            raise NotEnoughDataError(
                f"cannot popleft {count} elements from a window of {len(self)}"
            )
        remaining = count
        while remaining > 0:
            step = min(remaining, self._COMPACT_THRESHOLD - self._offset)
            self._offset += step
            remaining -= step
            if self._offset >= self._COMPACT_THRESHOLD:
                self._compact()

    def truncate_last(self, count: int) -> None:
        """Drop the ``count`` most recently appended elements."""
        if count < 0 or count > len(self):
            raise NotEnoughDataError(
                f"cannot truncate {count} elements from a window of {len(self)}"
            )
        self._end -= count

    def clear(self) -> None:
        """Remove every element (capacity is kept)."""
        self._offset = 0
        self._end = 0
        self._prefix[0] = 0.0
        self._prefix_sq[0] = 0.0

    def _compact(self) -> None:
        # Slice-and-rebase: move the live region to the front and subtract the
        # dead prefix's running totals instead of recomputing every prefix sum
        # from scratch — O(window) vectorised instead of O(window) Python ops.
        offset = self._offset
        size = self._end - offset
        self._values[:size] = self._values[offset : offset + size].copy()
        base = self._prefix[offset]
        base_sq = self._prefix_sq[offset]
        self._prefix[: size + 1] = self._prefix[offset : offset + size + 1] - base
        self._prefix_sq[: size + 1] = (
            self._prefix_sq[offset : offset + size + 1] - base_sq
        )
        self._offset = 0
        self._end = size

    def state_dict(self) -> dict:
        """Serialize the storage state for bit-exact resumption.

        The prefix arrays are *not* recomputable from the values: after a
        slice-and-rebase compaction each stored prefix is ``cumsum - base``,
        which differs from a fresh ``cumsum`` of the live values by rounding
        ulps.  The snapshot therefore captures the live physical region of all
        three arrays verbatim, plus the dead-prefix offset (which determines
        the next compaction point), so a restored window walks through exactly
        the same storage states as one that never stopped.
        """
        offset, end = self._offset, self._end
        return {
            "offset": offset,
            "values": self._values[offset:end].tolist(),
            "prefix": self._prefix[offset : end + 1].tolist(),
            "prefix_sq": self._prefix_sq[offset : end + 1].tolist(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        offset = int(state["offset"])
        live = np.asarray(state["values"], dtype=np.float64)
        prefix_live = np.asarray(state["prefix"], dtype=np.float64)
        prefix_sq_live = np.asarray(state["prefix_sq"], dtype=np.float64)
        size = live.shape[0]
        if offset < 0 or prefix_live.shape[0] != size + 1 or (
            prefix_sq_live.shape[0] != size + 1
        ):
            raise SnapshotError("corrupt PrefixStats snapshot")
        end = offset + size
        capacity = max(end, self._INITIAL_CAPACITY)
        # The dead region [0, offset) is never read (compaction copies from
        # the offset onward), so zeros are as good as the original contents.
        self._values = np.zeros(capacity, dtype=np.float64)
        self._prefix = np.zeros(capacity + 1, dtype=np.float64)
        self._prefix_sq = np.zeros(capacity + 1, dtype=np.float64)
        self._values[offset:end] = live
        self._prefix[offset : end + 1] = prefix_live
        self._prefix_sq[offset : end + 1] = prefix_sq_live
        self._offset = offset
        self._end = end

    def raw_arrays(self) -> Tuple["np.ndarray", "np.ndarray", int, int]:
        """Return ``(prefix, prefix_sq, offset, end)`` for batched math.

        ``prefix[k]`` is the running sum of the first ``k`` stored values since
        the last rebase; the live window spans physical indices
        ``[offset, end)``.  The arrays are the live internal buffers — callers
        must treat them as read-only and must not hold them across mutations.
        """
        return self._prefix, self._prefix_sq, self._offset, self._end

    @property
    def dead_prefix(self) -> int:
        """Number of already-dropped elements still occupying the arrays."""
        return self._offset

    def _bounds(self, start: int, stop: int) -> Tuple[int, int]:
        size = len(self)
        if start < 0 or stop > size or start > stop:
            raise IndexError(f"invalid range [{start}, {stop}) for size {size}")
        return self._offset + start, self._offset + stop

    def value_at(self, index: int) -> float:
        """Return the element at logical position ``index``."""
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range for size {len(self)}")
        return float(self._values[self._offset + index])

    def range_sum(self, start: int, stop: int) -> float:
        """Sum of elements in the logical range ``[start, stop)``."""
        lo, hi = self._bounds(start, stop)
        return float(self._prefix[hi] - self._prefix[lo])

    def range_sum_sq(self, start: int, stop: int) -> float:
        """Sum of squared elements in the logical range ``[start, stop)``."""
        lo, hi = self._bounds(start, stop)
        return float(self._prefix_sq[hi] - self._prefix_sq[lo])

    def mean(self, start: int, stop: int) -> float:
        """Mean of elements in ``[start, stop)`` (0.0 for an empty range)."""
        count = stop - start
        if count == 0:
            return 0.0
        return self.range_sum(start, stop) / count

    def variance(self, start: int, stop: int) -> float:
        """Unbiased variance of elements in ``[start, stop)``."""
        count = stop - start
        if count < 2:
            return 0.0
        total = self.range_sum(start, stop)
        total_sq = self.range_sum_sq(start, stop)
        mean = total / count
        raw = (total_sq - count * mean * mean) / (count - 1)
        return max(raw, 0.0)

    def std(self, start: int, stop: int) -> float:
        """Unbiased standard deviation of elements in ``[start, stop)``."""
        return math.sqrt(self.variance(start, stop))

    def to_array(self) -> "np.ndarray":
        """Return the current window, oldest first, as a fresh numpy array."""
        return self._values[self._offset : self._end].copy()

    def to_list(self) -> List[float]:
        """Return the current window, oldest first."""
        return self._values[self._offset : self._end].tolist()
