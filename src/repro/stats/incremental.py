"""Incremental (online) mean and variance estimators.

The OPTWIN paper (Section 3.4) points out that the means and standard
deviations of the two sub-windows do not need to be recomputed from scratch at
every step: they can be maintained incrementally.  This module provides three
flavours of incremental statistics:

``RunningStats``
    Classic Welford accumulator; supports only additions.  Used by detectors
    such as DDM/EDDM that never remove observations between resets.

``WindowedStats``
    Sum/sum-of-squares accumulator that supports both additions and removals,
    which is what a sliding window needs.

``PrefixStats``
    Prefix sums over a sliding window so that the mean/variance of *any*
    contiguous sub-window can be answered in O(1).  OPTWIN uses this to get the
    statistics of ``W_hist`` and ``W_new`` at the optimal cut without scanning.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.exceptions import NotEnoughDataError

__all__ = ["RunningStats", "WindowedStats", "PrefixStats"]


class RunningStats:
    """Welford's online algorithm for mean and variance (additions only).

    Numerically stable even for long streams of nearly identical values.

    Examples
    --------
    >>> rs = RunningStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     rs.update(x)
    >>> rs.mean
    2.0
    >>> round(rs.variance, 6)
    1.0
    """

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold ``value`` into the running statistics."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def update_many(self, values: Iterable[float]) -> None:
        """Fold every value from ``values`` into the running statistics."""
        for value in values:
            self.update(value)

    def reset(self) -> None:
        """Forget all observations."""
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when no observations were seen)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def population_variance(self) -> float:
        """Population (biased) variance."""
        if self._count < 1:
            return 0.0
        return self._m2 / self._count

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(max(self.variance, 0.0))

    @property
    def population_std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(max(self.population_variance, 0.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self._count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class WindowedStats:
    """Mean/variance over a multiset supporting additions *and* removals.

    Maintains the sum and sum of squares; removal is exact because the value
    being removed is supplied by the caller (sliding windows always know which
    element leaves).  A periodic exact recomputation is unnecessary for the
    magnitudes handled here (error rates in ``[0, 1]`` or bounded losses), but
    the accumulator clamps tiny negative variances caused by rounding.
    """

    __slots__ = ("_count", "_sum", "_sum_sq")

    def __init__(self) -> None:
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0

    def add(self, value: float) -> None:
        """Add one observation."""
        self._count += 1
        self._sum += value
        self._sum_sq += value * value

    def remove(self, value: float) -> None:
        """Remove one previously added observation."""
        if self._count == 0:
            raise NotEnoughDataError("remove from an empty WindowedStats")
        self._count -= 1
        self._sum -= value
        self._sum_sq -= value * value
        if self._count == 0:
            self._sum = 0.0
            self._sum_sq = 0.0

    def reset(self) -> None:
        """Forget all observations."""
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0

    @property
    def count(self) -> int:
        """Number of observations currently accounted for."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of the observations currently accounted for."""
        return self._sum

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self._count < 2:
            return 0.0
        mean = self._sum / self._count
        raw = (self._sum_sq - self._count * mean * mean) / (self._count - 1)
        return max(raw, 0.0)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowedStats(count={self._count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class PrefixStats:
    """Prefix sums over an ordered window for O(1) sub-window statistics.

    The window is kept as two parallel lists of prefix sums (values and squared
    values) anchored at an offset, so that dropping elements from the front is
    cheap (the offset moves) and the memory is compacted only occasionally.

    ``mean(i, j)`` and ``variance(i, j)`` answer queries over the *logical*
    half-open range ``[i, j)`` of the current window.
    """

    __slots__ = ("_values", "_prefix", "_prefix_sq", "_offset")

    # Compact the internal lists once the dead prefix exceeds this many items.
    _COMPACT_THRESHOLD = 8192

    def __init__(self) -> None:
        self._values: List[float] = []
        self._prefix: List[float] = [0.0]
        self._prefix_sq: List[float] = [0.0]
        self._offset = 0

    def __len__(self) -> int:
        return len(self._values) - self._offset

    def append(self, value: float) -> None:
        """Append ``value`` at the end of the window."""
        self._values.append(value)
        self._prefix.append(self._prefix[-1] + value)
        self._prefix_sq.append(self._prefix_sq[-1] + value * value)

    def popleft(self) -> float:
        """Drop and return the oldest element of the window."""
        if len(self) == 0:
            raise NotEnoughDataError("popleft from an empty PrefixStats")
        value = self._values[self._offset]
        self._offset += 1
        if self._offset >= self._COMPACT_THRESHOLD:
            self._compact()
        return value

    def clear(self) -> None:
        """Remove every element."""
        self._values = []
        self._prefix = [0.0]
        self._prefix_sq = [0.0]
        self._offset = 0

    def _compact(self) -> None:
        self._values = self._values[self._offset:]
        self._prefix = [0.0]
        self._prefix_sq = [0.0]
        for value in self._values:
            self._prefix.append(self._prefix[-1] + value)
            self._prefix_sq.append(self._prefix_sq[-1] + value * value)
        self._offset = 0

    def _bounds(self, start: int, stop: int) -> Tuple[int, int]:
        size = len(self)
        if start < 0 or stop > size or start > stop:
            raise IndexError(f"invalid range [{start}, {stop}) for size {size}")
        return self._offset + start, self._offset + stop

    def value_at(self, index: int) -> float:
        """Return the element at logical position ``index``."""
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range for size {len(self)}")
        return self._values[self._offset + index]

    def range_sum(self, start: int, stop: int) -> float:
        """Sum of elements in the logical range ``[start, stop)``."""
        lo, hi = self._bounds(start, stop)
        return self._prefix[hi] - self._prefix[lo]

    def range_sum_sq(self, start: int, stop: int) -> float:
        """Sum of squared elements in the logical range ``[start, stop)``."""
        lo, hi = self._bounds(start, stop)
        return self._prefix_sq[hi] - self._prefix_sq[lo]

    def mean(self, start: int, stop: int) -> float:
        """Mean of elements in ``[start, stop)`` (0.0 for an empty range)."""
        count = stop - start
        if count == 0:
            return 0.0
        return self.range_sum(start, stop) / count

    def variance(self, start: int, stop: int) -> float:
        """Unbiased variance of elements in ``[start, stop)``."""
        count = stop - start
        if count < 2:
            return 0.0
        total = self.range_sum(start, stop)
        total_sq = self.range_sum_sq(start, stop)
        mean = total / count
        raw = (total_sq - count * mean * mean) / (count - 1)
        return max(raw, 0.0)

    def std(self, start: int, stop: int) -> float:
        """Unbiased standard deviation of elements in ``[start, stop)``."""
        return math.sqrt(self.variance(start, stop))

    def to_list(self) -> List[float]:
        """Return the current window, oldest first."""
        return list(self._values[self._offset:])
