"""Exponentially weighted moving average estimators (used by ECDD).

ECDD (Ross et al. 2012) monitors the misclassification rate of a learner with
an EWMA chart whose control limit depends on the desired average run length
``ARL0``.  This module provides the EWMA estimator itself and an analytic
approximation of the control-limit factor ``L``: Ross et al. fit polynomials
in the error probability; here ``L`` is derived from the normal approximation
of the EWMA chart's run length (successive EWMA values are correlated, so the
effective number of independent exceedance opportunities per step is roughly
``lambda``), which reproduces the same order of magnitude (L in [1.6, 3.3])
and the same qualitative behaviour: ECDD reacts very quickly to changes and
pays for it with a comparatively high false-positive rate — exactly how it
behaves in the OPTWIN paper's experiments.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.exceptions import ConfigurationError
from repro.stats.distributions import normal_ppf

__all__ = [
    "EwmaEstimator",
    "ecdd_base_limit",
    "ecdd_control_limit",
    "SUPPORTED_ARL0",
]

#: ARL0 values used in the literature (any value >= 2 is accepted).
SUPPORTED_ARL0: Tuple[int, ...] = (100, 400, 1000)


def ecdd_base_limit(arl0: int = 400, lambda_: float = 0.2) -> float:
    """The p-independent factor of the ECDD control limit.

    Split out of :func:`ecdd_control_limit` so that batched detector loops can
    hoist it out of their per-element recurrence while provably sharing the
    same arithmetic as the scalar path.
    """
    if arl0 < 2:
        raise ConfigurationError(f"arl0 must be >= 2, got {arl0}")
    if not 0.0 < lambda_ <= 1.0:
        raise ConfigurationError(f"lambda_ must be in (0, 1], got {lambda_}")
    # One exceedance opportunity per ~1/lambda observations.
    tail_probability = min(max(1.0 / (lambda_ * arl0), 1e-12), 0.49)
    return normal_ppf(1.0 - tail_probability)


def ecdd_control_limit(
    p_estimate: float, arl0: int = 400, lambda_: float = 0.2
) -> float:
    """Return the ECDD control-limit factor ``L``.

    Parameters
    ----------
    p_estimate:
        Current estimate of the Bernoulli error probability (clamped to
        ``[0, 0.5]``).  A mild skewness adjustment lowers ``L`` slightly for
        very small error probabilities, mirroring the trend of Ross et al.'s
        fitted polynomials.
    arl0:
        Desired average run length between false positives (>= 2).
    lambda_:
        EWMA smoothing weight; determines how correlated successive chart
        values are and therefore how many effective exceedance opportunities
        occur per observation.
    """
    p = min(max(p_estimate, 0.0), 0.5)
    base_limit = ecdd_base_limit(arl0, lambda_)
    # Skewness adjustment: Bernoulli EWMAs with tiny p have a lighter upper
    # tail near zero, so the limit can sit slightly closer to the centre.
    adjustment = 0.7 + 0.6 * min(p, 0.5)
    return base_limit * adjustment


class EwmaEstimator:
    """EWMA of a Bernoulli stream with the variance bookkeeping ECDD needs.

    Parameters
    ----------
    lambda_:
        Weight given to the newest observation, in ``(0, 1]``.  The paper and
        Ross et al. use 0.2.

    Notes
    -----
    The estimator tracks three quantities:

    * ``p_estimate`` — the overall (unweighted) mean of all observations,
      which estimates the pre-change error probability;
    * ``z`` — the EWMA statistic;
    * ``z_variance_factor`` — the exact finite-horizon variance factor of the
      EWMA, ``lambda/(2-lambda) * (1 - (1-lambda)^(2t))``.
    """

    __slots__ = ("_lambda", "_count", "_p_estimate", "_z", "_variance_factor")

    def __init__(self, lambda_: float = 0.2) -> None:
        if not 0.0 < lambda_ <= 1.0:
            raise ConfigurationError(f"lambda_ must be in (0, 1], got {lambda_}")
        self._lambda = lambda_
        self._count = 0
        self._p_estimate = 0.0
        self._z = 0.0
        self._variance_factor = 0.0

    @property
    def lambda_(self) -> float:
        """Smoothing weight of the newest observation."""
        return self._lambda

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        return self._count

    @property
    def p_estimate(self) -> float:
        """Unweighted running mean of all observations."""
        return self._p_estimate

    @property
    def z(self) -> float:
        """Current EWMA statistic."""
        return self._z

    @property
    def z_std(self) -> float:
        """Standard deviation of the EWMA statistic under the null hypothesis."""
        bernoulli_var = self._p_estimate * (1.0 - self._p_estimate)
        return math.sqrt(max(bernoulli_var * self._variance_factor, 0.0))

    def update(self, value: float) -> None:
        """Fold one observation (0/1 error indicator) into the estimator."""
        self._count += 1
        self._p_estimate += (value - self._p_estimate) / self._count
        if self._count == 1:
            self._z = value
        else:
            self._z = (1.0 - self._lambda) * self._z + self._lambda * value
        decay = (1.0 - self._lambda) ** (2 * self._count)
        self._variance_factor = (self._lambda / (2.0 - self._lambda)) * (1.0 - decay)

    def reset(self) -> None:
        """Forget all observations."""
        self._count = 0
        self._p_estimate = 0.0
        self._z = 0.0
        self._variance_factor = 0.0

    def state(self) -> Tuple[int, float, float, float]:
        """Snapshot ``(count, p_estimate, z, variance_factor)``.

        Lets batched detector loops run the recurrence on local variables
        (avoiding per-element attribute access) and write the state back with
        :meth:`set_state` afterwards.
        """
        return self._count, self._p_estimate, self._z, self._variance_factor

    def set_state(
        self, count: int, p_estimate: float, z: float, variance_factor: float
    ) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        self._count = count
        self._p_estimate = p_estimate
        self._z = z
        self._variance_factor = variance_factor
