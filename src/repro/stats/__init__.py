"""Statistical substrate shared by the drift detectors and the evaluation code.

The sub-modules are deliberately small and self-contained:

* :mod:`repro.stats.circular_buffer` — bounded O(1) FIFO buffer.
* :mod:`repro.stats.incremental` — Welford / windowed / prefix statistics.
* :mod:`repro.stats.distributions` — t and F probability point functions.
* :mod:`repro.stats.welch` — Welch unequal-variance t-test.
* :mod:`repro.stats.ftest` — one-sided F-test for variances.
* :mod:`repro.stats.proportions` — equality-of-proportions test (STEPD).
* :mod:`repro.stats.ewma` — EWMA estimator and control limits (ECDD).
* :mod:`repro.stats.wilcoxon` — one-tailed Wilcoxon signed-rank test.
"""

from repro.stats.circular_buffer import CircularBuffer
from repro.stats.distributions import f_cdf, f_ppf, normal_cdf, normal_ppf, t_cdf, t_ppf
from repro.stats.ewma import EwmaEstimator, ecdd_control_limit
from repro.stats.ftest import FTestResult, f_statistic, f_test
from repro.stats.incremental import PrefixStats, RunningStats, WindowedStats
from repro.stats.proportions import ProportionTestResult, equal_proportions_test
from repro.stats.welch import (
    WelchResult,
    welch_degrees_of_freedom,
    welch_statistic,
    welch_t_test,
)
from repro.stats.wilcoxon import WilcoxonResult, wilcoxon_signed_rank

__all__ = [
    "CircularBuffer",
    "RunningStats",
    "WindowedStats",
    "PrefixStats",
    "t_ppf",
    "f_ppf",
    "t_cdf",
    "f_cdf",
    "normal_ppf",
    "normal_cdf",
    "WelchResult",
    "welch_statistic",
    "welch_degrees_of_freedom",
    "welch_t_test",
    "FTestResult",
    "f_statistic",
    "f_test",
    "ProportionTestResult",
    "equal_proportions_test",
    "EwmaEstimator",
    "ecdd_control_limit",
    "WilcoxonResult",
    "wilcoxon_signed_rank",
]
