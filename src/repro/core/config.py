"""Configuration object for the OPTWIN detector.

Keeping the parameters in a frozen dataclass gives a single place for
validation, sensible defaults matching the paper's experimental setup
(``delta = 0.99``, ``w_max = 25000``, ``rho = 0.5``), and hashability so that
pre-computed cut tables can be cached per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError

__all__ = ["OptwinConfig"]

#: Minimum window size used throughout the paper (Section 3.1).
DEFAULT_W_MIN = 30
#: Maximum window size used in the paper's experiments (Section 3.4).
DEFAULT_W_MAX = 25_000
#: Division-by-zero guard added to standard deviations (Algorithm 1).
DEFAULT_ETA = 1e-5


@dataclass(frozen=True)
class OptwinConfig:
    """Validated parameter set for :class:`repro.core.optwin.Optwin`.

    Attributes
    ----------
    delta:
        Overall confidence level of the drift detection, in ``(0, 1)``.  Each
        of the four statistical tests is run at ``delta ** (1/4)`` so the
        union bound yields ``delta`` overall (Theorem 3.1, part 1).
    rho:
        Robustness: the minimum ratio by which the mean of ``W_new`` must move
        (in units of ``sigma_hist``) to count as a drift.
    w_min:
        Minimum number of elements before any drift can be flagged.
    w_max:
        Maximum sliding-window size; the oldest element is evicted beyond it.
    eta:
        Stabiliser added to standard deviations in the F-test.
    one_sided:
        When ``True`` (the paper's OL setting, Section 3.4) drifts are only
        flagged when the new mean is at least the historical mean, i.e. the
        learner got *worse*.
    warning_delta:
        Confidence level of the relaxed tests used for the warning zone.
        Must satisfy ``0 < warning_delta < delta`` to be meaningful; set to
        ``0.0`` to disable warning detection, or leave it as ``None`` to use
        ``0.96 * delta`` (0.95 for the paper's ``delta = 0.99``).
    require_magnitude:
        When ``True`` a mean drift is only flagged if, in addition to the
        t-test rejecting, the observed mean shift is at least
        ``rho * sigma_hist`` — the paper's definition of the robustness
        parameter ("the minimum ratio by which mu_new has to vary in relation
        to sigma_hist in order to count as a concept drift", Section 3.2).
        Disabling it recovers a pure significance test (used by the ablation
        benchmarks).
    skip_variance_on_binary:
        When ``True`` (default) the F-test is not applied while every value
        observed so far is 0/1.  For Bernoulli error indicators the variance
        is a deterministic function of the mean, so the F-test carries no
        information beyond the t-test but — because sample variances of
        rare-error streams are far from F-distributed — it would dominate the
        false-positive count.  Disabling the flag restores the literal
        Algorithm 1 behaviour (both tests on every input).
    """

    delta: float = 0.99
    rho: float = 0.5
    w_min: int = DEFAULT_W_MIN
    w_max: int = DEFAULT_W_MAX
    eta: float = DEFAULT_ETA
    one_sided: bool = True
    warning_delta: Optional[float] = None
    require_magnitude: bool = True
    skip_variance_on_binary: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {self.delta}")
        if self.warning_delta is None:
            object.__setattr__(self, "warning_delta", 0.96 * self.delta)
        if self.rho <= 0.0:
            raise ConfigurationError(f"rho must be > 0, got {self.rho}")
        if self.w_min < 4:
            raise ConfigurationError(f"w_min must be >= 4, got {self.w_min}")
        if self.w_max < self.w_min:
            raise ConfigurationError(
                f"w_max ({self.w_max}) must be >= w_min ({self.w_min})"
            )
        if self.eta < 0.0:
            raise ConfigurationError(f"eta must be >= 0, got {self.eta}")
        if self.warning_delta < 0.0 or self.warning_delta >= 1.0:
            raise ConfigurationError(
                f"warning_delta must be in [0, 1), got {self.warning_delta}"
            )
        if 0.0 < self.warning_delta and self.warning_delta >= self.delta:
            raise ConfigurationError(
                "warning_delta must be strictly smaller than delta "
                f"(got warning_delta={self.warning_delta}, delta={self.delta})"
            )

    @property
    def delta_prime(self) -> float:
        """Per-test confidence ``delta ** (1/4)`` (Section 3.3)."""
        return self.delta ** 0.25

    @property
    def warning_delta_prime(self) -> float:
        """Per-test confidence used by the warning zone (0.0 when disabled)."""
        if self.warning_delta <= 0.0:
            return 0.0
        return self.warning_delta ** 0.25

    @property
    def warning_enabled(self) -> bool:
        """Whether warning detection is active."""
        return self.warning_delta > 0.0
