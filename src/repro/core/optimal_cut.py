"""Optimal-cut machinery (Equations 1, 2, and 13 of the OPTWIN paper).

For a sliding window of ``length`` elements, OPTWIN splits it into a
historical part of ``n_hist`` elements and a new part of ``n_new = length -
n_hist`` elements.  Equation 1 of the paper relates the user-supplied
robustness ``rho`` to the smallest mean shift (in units of ``sigma_hist``)
that the combination of Welch t-test and F-test is guaranteed to flag with
confidence ``delta'`` for a given split.  The *optimal* split is the largest
``nu = n_hist / length`` whose guaranteed-detectable shift is still at most
``rho`` — it maximises the historical window (stable statistics) while keeping
the new window just large enough to detect drifts of the requested magnitude,
which minimises the detection delay.

Everything in this module depends only on ``length``, ``rho`` and ``delta'``
(never on the data), which is what makes the paper's pre-computation of the
cut tables possible (Section 3.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.stats.distributions import f_ppf, t_ppf

__all__ = [
    "SplitSpec",
    "detectable_rho",
    "welch_df_upper_bound",
    "optimal_split",
    "rho_temp",
    "minimum_solvable_length",
]

#: Each sub-window needs at least this many elements for both tests to be
#: defined (variance needs two observations, F-test dof must be >= 1).
_MIN_SUBWINDOW = 2


@dataclass(frozen=True)
class SplitSpec:
    """Pre-computable quantities for one window length.

    Attributes
    ----------
    length:
        Window length ``|W|`` the spec was computed for.
    nu_split:
        Number of elements in ``W_hist`` (``floor(nu * |W|)``).
    nu:
        The splitting fraction ``nu_split / length``.
    t_critical:
        ``t_ppf(delta', df)`` with ``df`` from Equation 2, evaluated at the
        split.
    f_critical:
        ``f_ppf(delta', n_new - 1, n_hist - 1)`` — the F-test threshold used
        on Line 11 of Algorithm 1 (numerator dof from ``W_new``).
    degrees_of_freedom:
        The Welch degrees-of-freedom upper bound of Equation 2.
    solved:
        ``True`` when ``nu`` is an actual root of Equation 1; ``False`` when
        the window is still too small and the 50/50 fallback split was used.
    """

    length: int
    nu_split: int
    nu: float
    t_critical: float
    f_critical: float
    degrees_of_freedom: float
    solved: bool

    @property
    def n_hist(self) -> int:
        """Number of elements in the historical sub-window."""
        return self.nu_split

    @property
    def n_new(self) -> int:
        """Number of elements in the new sub-window."""
        return self.length - self.nu_split


def welch_df_upper_bound(n_hist: int, n_new: int, f_factor: float) -> float:
    """Equation 2: Welch degrees of freedom with ``sigma_new`` at its F-bound.

    Substituting ``sigma_new^2 <= sigma_hist^2 * f_factor`` into the Welch
    formula cancels ``sigma_hist`` and leaves an expression that depends only
    on the sub-window sizes and the F-test threshold.
    """
    if n_hist < 1 or n_new < 1:
        raise ConfigurationError("both sub-windows need at least one element")
    term_hist = 1.0 / n_hist
    term_new = f_factor / n_new
    numerator = (term_hist + term_new) ** 2
    denom_hist = (term_hist ** 2) / max(n_hist - 1, 1)
    denom_new = (term_new ** 2) / max(n_new - 1, 1)
    denominator = denom_hist + denom_new
    if denominator <= 0.0:
        return float(max(n_hist + n_new - 2, 1))
    return max(numerator / denominator, 1.0)


def detectable_rho(n_hist: int, n_new: int, confidence: float) -> float:
    """Right-hand side of Equation 1 for a concrete integer split.

    Returns the smallest mean shift (in units of ``sigma_hist``) that the
    Welch t-test is guaranteed to flag with the given per-test ``confidence``
    when the F-test bounds ``sigma_new`` by ``sigma_hist * sqrt(f_factor)``.
    """
    if n_hist < _MIN_SUBWINDOW or n_new < _MIN_SUBWINDOW:
        raise ConfigurationError(
            f"both sub-windows need >= {_MIN_SUBWINDOW} elements, "
            f"got n_hist={n_hist}, n_new={n_new}"
        )
    f_factor = f_ppf(confidence, n_hist - 1, n_new - 1)
    df = welch_df_upper_bound(n_hist, n_new, f_factor)
    t_critical = t_ppf(confidence, df)
    return t_critical * math.sqrt(1.0 / n_hist + f_factor / n_new)


def rho_temp(length: int, confidence: float) -> float:
    """Equation 13: the detectable shift for the 50/50 fallback split."""
    n_hist = length // 2
    n_new = length - n_hist
    return detectable_rho(n_hist, n_new, confidence)


def _spec_for_split(length: int, n_hist: int, confidence: float, solved: bool) -> SplitSpec:
    n_new = length - n_hist
    f_factor = f_ppf(confidence, n_hist - 1, n_new - 1)
    df = welch_df_upper_bound(n_hist, n_new, f_factor)
    t_critical = t_ppf(confidence, df)
    # Line 11 of Algorithm 1 takes the F threshold with dof
    # (nu*|W| - 1, (1 - nu)*|W| - 1), i.e. the *historical* window first, even
    # though W_new's variance sits in the numerator of the statistic.  With
    # the historical window being the larger one this is the more conservative
    # of the two orderings and is what keeps OPTWIN's false-positive rate low;
    # we follow the paper literally (it also makes f_critical identical to the
    # f_factor of Equation 1).
    f_critical = f_factor
    return SplitSpec(
        length=length,
        nu_split=n_hist,
        nu=n_hist / length,
        t_critical=t_critical,
        f_critical=f_critical,
        degrees_of_freedom=df,
        solved=solved,
    )


def optimal_split(
    length: int,
    rho: float,
    confidence: float,
    hint: Optional[int] = None,
) -> SplitSpec:
    """Find the optimal split of a window of ``length`` elements.

    The optimal split is the *largest* ``n_hist`` such that
    ``detectable_rho(n_hist, length - n_hist) <= rho``; if no split satisfies
    the inequality the window is too small and the 50/50 fallback is returned
    with ``solved=False`` (Section 3.3: "Otherwise, it is set to nu = 0.5").

    Parameters
    ----------
    length:
        Current window size ``|W|`` (must be at least ``2 * _MIN_SUBWINDOW``).
    rho:
        Robustness parameter.
    confidence:
        Per-test confidence ``delta'``.
    hint:
        Optional warm-start value of ``n_hist`` (e.g. the optimal split of the
        previous window length).  The search walks locally from the hint,
        which makes the amortised cost O(1) when lengths are visited in order.
    """
    if length < 2 * _MIN_SUBWINDOW:
        raise ConfigurationError(
            f"window length must be >= {2 * _MIN_SUBWINDOW}, got {length}"
        )
    if rho <= 0.0:
        raise ConfigurationError(f"rho must be > 0, got {rho}")

    lo = _MIN_SUBWINDOW
    hi = length - _MIN_SUBWINDOW

    def feasible(n_hist: int) -> bool:
        return detectable_rho(n_hist, length - n_hist, confidence) <= rho

    if hint is not None:
        start = min(max(hint, lo), hi)
        if feasible(start):
            # Walk right while the next split is still feasible.
            n_hist = start
            while n_hist < hi and feasible(n_hist + 1):
                n_hist += 1
            return _spec_for_split(length, n_hist, confidence, solved=True)
        # Walk left until a feasible split is found (or none exists).
        n_hist = start - 1
        while n_hist >= lo:
            if feasible(n_hist):
                return _spec_for_split(length, n_hist, confidence, solved=True)
            n_hist -= 1
        return _spec_for_split(length, length // 2, confidence, solved=False)

    # No hint: binary search on the right (increasing) branch.  The function
    # detectable_rho(nu) is U-shaped in nu; its largest feasible point, when
    # one exists, lies on the increasing branch, so we first check whether any
    # point is feasible by probing the 50/50 split and a coarse grid.
    probe_points = sorted({length // 2, lo, hi, (length * 3) // 4, length // 4})
    feasible_probe = None
    for probe in probe_points:
        if lo <= probe <= hi and feasible(probe):
            feasible_probe = probe
            break
    if feasible_probe is None:
        # Fine scan as a last resort (cheap for the small lengths where this
        # can happen); otherwise fall back to the 50/50 split.
        step = max(1, length // 64)
        for probe in range(lo, hi + 1, step):
            if feasible(probe):
                feasible_probe = probe
                break
        if feasible_probe is None:
            return _spec_for_split(length, length // 2, confidence, solved=False)

    # Binary search for the largest feasible n_hist in [feasible_probe, hi].
    low, high = feasible_probe, hi
    while low < high:
        mid = (low + high + 1) // 2
        if feasible(mid):
            low = mid
        else:
            high = mid - 1
    return _spec_for_split(length, low, confidence, solved=True)


def minimum_solvable_length(rho: float, confidence: float, max_length: int = 100_000) -> int:
    """Return the smallest window length whose Equation 1 has a solution.

    This is the paper's ``w_proof``: below it OPTWIN falls back to the 50/50
    split and the weaker ``rho_temp`` guarantee.
    """
    if rho <= 0.0:
        raise ConfigurationError(f"rho must be > 0, got {rho}")
    for length in range(2 * _MIN_SUBWINDOW, max_length + 1):
        n_new = length - length // 2
        n_hist = length - n_new
        if n_hist < _MIN_SUBWINDOW:
            continue
        if detectable_rho(n_hist, n_new, confidence) <= rho:
            return length
    raise ConfigurationError(
        f"no window length up to {max_length} admits a solution for rho={rho}"
    )
