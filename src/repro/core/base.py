"""Common interface shared by every drift detector in the library.

All detectors — OPTWIN itself and every baseline — implement the same
streaming protocol so that evaluation code, pipelines, and benchmarks can be
written once and parameterised by detector:

>>> detector = SomeDetector()
>>> for value in error_stream:
...     result = detector.update(value)
...     if result.drift_detected:
...         retrain_model()

``update`` accepts one monitored value (a binary error indicator or a
real-valued loss), returns a :class:`DetectionResult`, and also mirrors the
outcome in the ``drift_detected`` / ``warning_detected`` properties for
callers that prefer the River-style property API.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

__all__ = ["DriftType", "DetectionResult", "DriftDetector"]


class DriftType(str, Enum):
    """Which statistic triggered a drift flag."""

    MEAN = "mean"
    VARIANCE = "variance"
    DISTRIBUTION = "distribution"


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of feeding one element to a drift detector.

    Attributes
    ----------
    drift_detected:
        Whether a concept drift was flagged at this element.
    warning_detected:
        Whether the detector entered (or stayed in) its warning zone.
    drift_type:
        Which statistic triggered the drift, when the detector can tell.
    statistics:
        Free-form diagnostic values (test statistics, thresholds, window
        sizes) useful for debugging and reporting; never required by callers.
    """

    drift_detected: bool = False
    warning_detected: bool = False
    drift_type: Optional[DriftType] = None
    statistics: Dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.drift_detected


class DriftDetector(abc.ABC):
    """Abstract base class for error-rate-based concept-drift detectors.

    Sub-classes implement :meth:`_update_one` and :meth:`reset`; the public
    :meth:`update` wraps :meth:`_update_one` with element counting and result
    bookkeeping so every detector exposes identical statistics.
    """

    def __init__(self) -> None:
        self._n_seen = 0
        self._n_drifts = 0
        self._n_warnings = 0
        self._last_result = DetectionResult()

    # ------------------------------------------------------------------ API

    def update(self, value: float) -> DetectionResult:
        """Feed one monitored value and return the detection outcome."""
        self._n_seen += 1
        result = self._update_one(float(value))
        self._last_result = result
        if result.drift_detected:
            self._n_drifts += 1
        if result.warning_detected:
            self._n_warnings += 1
        return result

    def update_many(self, values: Iterable[float]) -> List[int]:
        """Feed many values; return the 0-based indices where drifts fired."""
        detections: List[int] = []
        for index, value in enumerate(values):
            if self.update(value).drift_detected:
                detections.append(index)
        return detections

    @abc.abstractmethod
    def _update_one(self, value: float) -> DetectionResult:
        """Process one value and return the detection outcome."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return the detector to its initial (post-construction) state.

        Implementations must clear their internal windows/estimators but may
        keep configuration and any data-independent pre-computed tables.
        """

    # ----------------------------------------------------------- properties

    @property
    def drift_detected(self) -> bool:
        """Whether the most recent :meth:`update` flagged a drift."""
        return self._last_result.drift_detected

    @property
    def warning_detected(self) -> bool:
        """Whether the most recent :meth:`update` flagged a warning."""
        return self._last_result.warning_detected

    @property
    def last_result(self) -> DetectionResult:
        """The full :class:`DetectionResult` of the most recent update."""
        return self._last_result

    @property
    def n_seen(self) -> int:
        """Total number of values fed to the detector (across resets)."""
        return self._n_seen

    @property
    def n_drifts(self) -> int:
        """Total number of drifts flagged so far."""
        return self._n_drifts

    @property
    def n_warnings(self) -> int:
        """Total number of warning-zone updates so far."""
        return self._n_warnings

    # ------------------------------------------------------------- helpers

    def _reset_counters(self) -> None:
        """Reset the bookkeeping counters (used by :meth:`reset` overrides)."""
        self._n_seen = 0
        self._n_drifts = 0
        self._n_warnings = 0
        self._last_result = DetectionResult()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_seen={self._n_seen}, n_drifts={self._n_drifts})"
