"""Common interface shared by every drift detector in the library.

All detectors — OPTWIN itself and every baseline — implement the same
streaming protocol so that evaluation code, pipelines, and benchmarks can be
written once and parameterised by detector:

>>> detector = SomeDetector()
>>> for value in error_stream:
...     result = detector.update(value)
...     if result.drift_detected:
...         retrain_model()

``update`` accepts one monitored value (a binary error indicator or a
real-valued loss), returns a :class:`DetectionResult`, and also mirrors the
outcome in the ``drift_detected`` / ``warning_detected`` properties for
callers that prefer the River-style property API.
"""

from __future__ import annotations

import abc
import numbers
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Type

import numpy as np

from repro.exceptions import SnapshotError

#: Version of the detector snapshot schema produced by
#: :meth:`DriftDetector.state_dict`.  Bump whenever the layout of the
#: serialized payload changes incompatibly; :meth:`DriftDetector.load_state_dict`
#: refuses snapshots from a different version.
SNAPSHOT_SCHEMA_VERSION = 1


def as_value_array(values: Iterable[float]) -> "np.ndarray":
    """Coerce a chunk of monitored values into a contiguous float64 vector.

    Accepts 1-d array-likes, 0-d arrays, and bare real scalars — including
    numpy scalars such as ``np.int64``/``np.float32``, which are
    :class:`numbers.Real` but *not* ``int``/``float`` and therefore must not
    fall through to the generic ``np.fromiter`` path (a 0-d value is not
    iterable).  ``np.bool_`` (the type of ``y_pred != y_true`` on numpy
    scalars) registers in *no* ``numbers`` ABC, so it needs its own clause.
    Scalars yield a one-element vector.
    """
    if isinstance(values, np.ndarray):
        array = np.ascontiguousarray(values, dtype=np.float64)
        if array.ndim != 1:
            array = array.reshape(-1)
        return array
    if isinstance(values, (list, tuple)):
        return np.asarray(values, dtype=np.float64)
    if isinstance(values, (numbers.Real, np.bool_)):
        return np.asarray([float(values)], dtype=np.float64)
    return np.fromiter(values, dtype=np.float64)


def _rebuild_detector(
    cls: Type["DriftDetector"],
    config: Dict[str, Any],
    state: Dict[str, Any],
) -> "DriftDetector":
    """Unpickling hook of :meth:`DriftDetector.__reduce__` (top-level so it
    pickles by reference)."""
    detector = cls.from_config_dict(config)
    detector.load_state_dict(state)
    return detector

def seeded_running_argmin(
    values: "np.ndarray", seed: float, strict: bool = False
) -> "np.ndarray":
    """Index of the running minimum of ``values`` seeded with ``seed``.

    Returns ``change_index`` with ``change_index[j]`` = the last position
    ``k <= j`` where ``values[k]`` improved on the minimum of ``seed`` and all
    earlier values, or ``-1`` while the seed still holds.  With
    ``strict=False`` ties count as improvements (the index moves forward, as
    DDM's ``p_min``/``s_min`` update does); with ``strict=True`` they do not
    (HDDM's best-prefix update).  ``values`` must be non-empty.

    This is the shared kernel of the error-indicator detectors' batched fast
    paths: the scalar codes keep "statistics recorded at the best element so
    far" (DDM and RDDM their minimum ``p + s``, HDDM_A its lowest Hoeffding
    bound), and the batched forms recover those records for *every* position
    of a segment at once by gathering at ``change_index``.
    """
    count = values.shape[0]
    running_prev = np.empty(count, dtype=np.float64)
    running_prev[0] = seed
    if count > 1:
        np.minimum.accumulate(values[:-1], out=running_prev[1:])
        np.minimum(running_prev[1:], seed, out=running_prev[1:])
    changed = values < running_prev if strict else values <= running_prev
    change_index = np.where(changed, np.arange(count), -1)
    np.maximum.accumulate(change_index, out=change_index)
    return change_index


__all__ = [
    "DriftType",
    "DetectionResult",
    "BatchResult",
    "DriftDetector",
    "as_value_array",
    "seeded_running_argmin",
    "SNAPSHOT_SCHEMA_VERSION",
]


class DriftType(str, Enum):
    """Which statistic triggered a drift flag."""

    MEAN = "mean"
    VARIANCE = "variance"
    DISTRIBUTION = "distribution"


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of feeding one element to a drift detector.

    Attributes
    ----------
    drift_detected:
        Whether a concept drift was flagged at this element.
    warning_detected:
        Whether the detector entered (or stayed in) its warning zone.
    drift_type:
        Which statistic triggered the drift, when the detector can tell.
    statistics:
        Free-form diagnostic values (test statistics, thresholds, window
        sizes) useful for debugging and reporting; never required by callers.
    """

    drift_detected: bool = False
    warning_detected: bool = False
    drift_type: Optional[DriftType] = None
    statistics: Dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.drift_detected


@dataclass
class BatchResult:
    """Outcome of feeding a chunk of elements to a drift detector.

    Attributes
    ----------
    n_processed:
        Number of elements consumed from the chunk (always the full chunk).
    drift_indices:
        0-based positions within the chunk where drifts were flagged.
    warning_indices:
        0-based positions within the chunk where the warning zone was active
        (drift positions are *not* repeated here unless the detector reports
        the element as both, which all detectors in this library do — a drift
        element always counts as a warning element as well).
    results:
        Per-element :class:`DetectionResult` objects, only populated when the
        batch was run with ``collect_stats=True``; ``None`` otherwise so the
        fast paths never allocate per-element objects.
    """

    n_processed: int
    drift_indices: List[int] = field(default_factory=list)
    warning_indices: List[int] = field(default_factory=list)
    results: Optional[List[DetectionResult]] = None

    @property
    def n_drifts(self) -> int:
        """Number of drifts flagged inside the chunk."""
        return len(self.drift_indices)


class DriftDetector(abc.ABC):
    """Abstract base class for error-rate-based concept-drift detectors.

    Sub-classes implement :meth:`_update_one` and :meth:`reset`; the public
    :meth:`update` wraps :meth:`_update_one` with element counting and result
    bookkeeping so every detector exposes identical statistics.
    """

    #: Maximum number of elements evaluated by one vectorised segment of a
    #: batched fast path.  Shared by every ``update_batch`` override so the
    #: segmentation policy is tuned in one place.
    _BATCH_CHUNK = 8192
    #: Segment size right after a drift/boundary event; the fast paths grow
    #: it geometrically back to :attr:`_BATCH_CHUNK` so drift-dense streams
    #: do not redo full-chunk vector work for every few consumed elements.
    _BATCH_RESTART = 256

    def __init__(self) -> None:
        self._n_seen = 0
        self._n_drifts = 0
        self._n_warnings = 0
        self._last_result = DetectionResult()

    # ------------------------------------------------------------------ API

    def update(self, value: float) -> DetectionResult:
        """Feed one monitored value and return the detection outcome."""
        self._n_seen += 1
        result = self._update_one(float(value))
        self._last_result = result
        if result.drift_detected:
            self._n_drifts += 1
        if result.warning_detected:
            self._n_warnings += 1
        return result

    def update_many(self, values: Iterable[float]) -> List[int]:
        """Feed many values; return the 0-based indices where drifts fired.

        Routed through :meth:`update_batch`, so detectors with a vectorised
        batch implementation serve this call at batch speed while reporting
        exactly the same drift indices as element-by-element :meth:`update`.
        """
        return self.update_batch(values).drift_indices

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Feed a chunk of values and return the aggregated outcome.

        The base implementation is the plain scalar loop; detectors with a
        closed-form batched path override this method.  Overrides must be
        *observationally equivalent* to the scalar loop: identical drift and
        warning indices, identical post-batch detector state, and identical
        ``n_seen``/``n_drifts``/``n_warnings`` counters.

        Parameters
        ----------
        values:
            Chunk of monitored values, oldest first.
        collect_stats:
            When ``True``, per-element :class:`DetectionResult` objects
            (including their diagnostic ``statistics`` dicts) are collected in
            :attr:`BatchResult.results`.  Fast paths fall back to the scalar
            loop in this mode — ask for statistics only when you need them.
        """
        drift_indices: List[int] = []
        warning_indices: List[int] = []
        results: Optional[List[DetectionResult]] = [] if collect_stats else None
        count = 0
        for index, value in enumerate(values):
            outcome = self.update(value)
            count += 1
            if outcome.drift_detected:
                drift_indices.append(index)
            if outcome.warning_detected:
                warning_indices.append(index)
            if results is not None:
                results.append(outcome)
        return BatchResult(count, drift_indices, warning_indices, results)

    @abc.abstractmethod
    def _update_one(self, value: float) -> DetectionResult:
        """Process one value and return the detection outcome."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return the detector to its initial (post-construction) state.

        Implementations must restore *exactly* the post-``__init__`` state:
        clear their internal windows/estimators (and re-seed any internal
        RNGs) while keeping configuration and data-independent pre-computed
        tables.  The snapshot/restore machinery of :mod:`repro.serving`
        depends on this invariant, and the registry-driven
        reset-equals-fresh-instance test enforces it for every detector.
        """

    # ---------------------------------------------------- snapshot / restore

    def state_dict(self) -> Dict[str, Any]:
        """Serialize the full detector state as a versioned, JSON-safe dict.

        The payload contains everything needed to resume the detector
        *bit-exactly*: a restored detector produces the same detections, in
        both scalar and batched mode, as one that never stopped.  Layout::

            {
                "schema_version": 1,
                "detector": "<class name>",
                "config": {...},       # constructor kwargs (see _config_dict)
                "counters": {...},     # n_seen / n_drifts / n_warnings
                "last_result": {...},  # drift/warning flags + drift type
                "state": {...},        # detector-specific (see _state_dict)
            }

        All values are plain Python scalars, lists, and dicts.  Non-finite
        floats (``inf`` sentinels of DDM-family minima) do appear; use
        :func:`repro.serving.snapshot.sanitize` before writing strict JSON.
        """
        last = self._last_result
        return {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "detector": type(self).__name__,
            "config": self._config_dict(),
            "counters": {
                "n_seen": self._n_seen,
                "n_drifts": self._n_drifts,
                "n_warnings": self._n_warnings,
            },
            "last_result": {
                "drift_detected": last.drift_detected,
                "warning_detected": last.warning_detected,
                "drift_type": last.drift_type.value if last.drift_type else None,
            },
            "state": self._state_dict(),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        The receiving instance must be of the same class and (for bit-exact
        resumption) constructed with the same configuration; use
        :func:`repro.serving.snapshot.restore_detector` to rebuild an
        instance straight from a snapshot.
        """
        version = state.get("schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise SnapshotError(
                f"snapshot schema version {version!r} is not supported "
                f"(expected {SNAPSHOT_SCHEMA_VERSION})"
            )
        detector = state.get("detector")
        if detector != type(self).__name__:
            raise SnapshotError(
                f"snapshot of {detector!r} cannot be loaded into "
                f"{type(self).__name__}"
            )
        try:
            counters = state["counters"]
            self._n_seen = int(counters["n_seen"])
            self._n_drifts = int(counters["n_drifts"])
            self._n_warnings = int(counters["n_warnings"])
            last = state["last_result"]
            drift_type = last.get("drift_type")
            self._last_result = DetectionResult(
                drift_detected=bool(last["drift_detected"]),
                warning_detected=bool(last["warning_detected"]),
                drift_type=DriftType(drift_type) if drift_type else None,
            )
            self._load_state(state["state"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"corrupt detector snapshot: {exc}") from exc

    @classmethod
    def from_config_dict(cls, config: Mapping[str, Any]) -> "DriftDetector":
        """Build a fresh detector from a snapshot's ``config`` payload."""
        return cls(**config)

    def __reduce__(self) -> Tuple[Any, ...]:
        """Pickle through the bit-exact snapshot machinery.

        Detectors cross process boundaries in the sharded serving layer
        (registration messages, ``ProcessPoolExecutor`` fan-outs), and default
        attribute pickling would duplicate shared per-configuration caches
        (OPTWIN's cut tables) and silently miss any state a future detector
        keeps in non-picklable form.  Routing the pickle through
        ``from_config_dict`` + ``load_state_dict`` reuses the contract the
        snapshot round-trip suite already pins for every detector: the
        unpickled instance continues bit-exactly.
        """
        return (_rebuild_detector, (type(self), self._config_dict(), self.state_dict()))

    def _config_dict(self) -> Dict[str, Any]:
        """Constructor kwargs that rebuild an identically configured instance.

        The default is an empty dict (a parameterless detector); detectors
        with configuration override this.
        """
        return {}

    def _state_dict(self) -> Dict[str, Any]:
        """Detector-specific mutable state (everything :meth:`reset` clears).

        The default is an empty dict (a stateless detector); every stateful
        detector overrides this together with :meth:`_load_state`.
        """
        return {}

    def _load_state(self, state: Mapping[str, Any]) -> None:
        """Restore the payload produced by :meth:`_state_dict`."""

    # ----------------------------------------------------------- properties

    @property
    def drift_detected(self) -> bool:
        """Whether the most recent :meth:`update` flagged a drift."""
        return self._last_result.drift_detected

    @property
    def warning_detected(self) -> bool:
        """Whether the most recent :meth:`update` flagged a warning."""
        return self._last_result.warning_detected

    @property
    def last_result(self) -> DetectionResult:
        """The full :class:`DetectionResult` of the most recent update."""
        return self._last_result

    @property
    def n_seen(self) -> int:
        """Total number of values fed to the detector (across resets)."""
        return self._n_seen

    @property
    def n_drifts(self) -> int:
        """Total number of drifts flagged so far."""
        return self._n_drifts

    @property
    def n_warnings(self) -> int:
        """Total number of warning-zone updates so far."""
        return self._n_warnings

    # ------------------------------------------------------------- helpers

    def _reset_counters(self) -> None:
        """Reset the bookkeeping counters (used by :meth:`reset` overrides)."""
        self._n_seen = 0
        self._n_drifts = 0
        self._n_warnings = 0
        self._last_result = DetectionResult()

    def _commit_batch(
        self,
        n_processed: int,
        n_drifts: int,
        n_warnings: int,
        last_result: DetectionResult,
    ) -> None:
        """Fold a fast-path batch into the bookkeeping counters."""
        self._n_seen += n_processed
        self._n_drifts += n_drifts
        self._n_warnings += n_warnings
        self._last_result = last_result

    def _finish_batch(
        self,
        n_processed: int,
        drift_indices: List[int],
        warning_indices: List[int],
        drift_type: Optional[DriftType] = None,
    ) -> BatchResult:
        """Build the :class:`BatchResult` of a fast path and commit counters.

        Reconstructs the final element's drift/warning flags from the index
        lists (which are ascending by construction) and mirrors them into
        ``last_result``; ``drift_type`` is reported only when the final
        element was a drift.
        """
        last_drift = bool(drift_indices) and drift_indices[-1] == n_processed - 1
        last_warning = (
            bool(warning_indices) and warning_indices[-1] == n_processed - 1
        )
        last_result = DetectionResult(
            drift_detected=last_drift,
            warning_detected=last_warning,
            drift_type=drift_type if last_drift else None,
        )
        self._commit_batch(
            n_processed, len(drift_indices), len(warning_indices), last_result
        )
        return BatchResult(n_processed, drift_indices, warning_indices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_seen={self._n_seen}, n_drifts={self._n_drifts})"
