"""OPTWIN — the OPTimal WINdow concept-drift detector (Algorithm 1).

OPTWIN keeps a sliding window ``W`` of the error values produced by an online
learner.  At every new element it:

1. looks up the optimal split ``nu`` of the current window length (the largest
   historical window that still guarantees detection of a mean shift of
   ``rho * sigma_hist`` — Equation 1 of the paper),
2. splits ``W`` into ``W_hist`` and ``W_new`` at that point,
3. runs the one-sided F-test on the sub-window variances (Line 11) and the
   Welch t-test on the sub-window means (Line 14), each at the per-test
   confidence ``delta' = delta ** (1/4)``,
4. flags a drift and resets itself when either test rejects.

The split and both test thresholds depend only on the window length, so they
are served from a process-wide pre-computed table
(:mod:`repro.core.ppf_tables`), keeping the per-element cost O(1) amortised.

Example
-------
>>> from repro.core import Optwin
>>> detector = Optwin(delta=0.99, rho=0.5, w_max=1000)
>>> import random
>>> rng = random.Random(7)
>>> drift_points = []
>>> for i in range(2000):
...     error = rng.gauss(0.2, 0.05) if i < 1000 else rng.gauss(0.8, 0.05)
...     if detector.update(error).drift_detected:
...         drift_points.append(i)
>>> len(drift_points) >= 1
True
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
)
from repro.core.config import OptwinConfig
from repro.core.optimal_cut import SplitSpec
from repro.core.ppf_tables import CutTable, get_cut_table
from repro.exceptions import ConfigurationError
from repro.stats.incremental import PrefixStats
from repro.stats.welch import welch_statistic

__all__ = ["Optwin"]

#: Window contents retained after a drift: drop everything (Algorithm 1's
#: ``reset()``) or keep the post-drift sub-window as the new history.
_RESET_MODES = ("full", "keep_new")


class Optwin(DriftDetector):
    """Optimal-window drift detector of Tosi & Theobald (ICDE 2024).

    Parameters
    ----------
    delta:
        Overall confidence level of the detection, in ``(0, 1)``.
    rho:
        Robustness: minimum shift of the new mean, in units of the historical
        standard deviation, that should count as a drift.
    w_min:
        Minimum number of elements before drifts can be flagged.
    w_max:
        Maximum sliding-window size.
    one_sided:
        Only flag drifts where the monitored value (an error or loss)
        *increased*; this is the behaviour used in the paper's experiments.
    warning_delta:
        Confidence of the relaxed tests that define the warning zone; pass
        ``0.0`` to disable warnings or ``None`` for the default
        ``0.96 * delta``.
    require_magnitude:
        Require the observed mean shift to be at least ``rho * sigma_hist``
        (the paper's definition of robustness) on top of the t-test; this is
        what keeps the false-positive rate low.
    skip_variance_on_binary:
        Skip the F-test while the input looks like a 0/1 error-indicator
        stream (the Bernoulli variance is determined by the mean, so the
        F-test would only add false positives there); real-valued inputs are
        unaffected.
    reset_mode:
        ``"full"`` clears the window after a drift (Algorithm 1); ``"keep_new"``
        keeps ``W_new`` as the new history, which lowers the delay for closely
        spaced drifts.
    config:
        Alternatively, pass a fully built :class:`OptwinConfig`; it overrides
        the individual keyword arguments.

    Notes
    -----
    The detector feeds on any real-valued, per-example measure of learner
    quality: a 0/1 misclassification indicator, a regression loss, or a batch
    loss.  Values do not need to be bounded.
    """

    def __init__(
        self,
        delta: float = 0.99,
        rho: float = 0.5,
        w_min: int = 30,
        w_max: int = 25_000,
        one_sided: bool = True,
        warning_delta: Optional[float] = None,
        require_magnitude: bool = True,
        skip_variance_on_binary: bool = True,
        reset_mode: str = "full",
        config: Optional[OptwinConfig] = None,
    ) -> None:
        super().__init__()
        if config is None:
            config = OptwinConfig(
                delta=delta,
                rho=rho,
                w_min=w_min,
                w_max=w_max,
                one_sided=one_sided,
                warning_delta=warning_delta,
                require_magnitude=require_magnitude,
                skip_variance_on_binary=skip_variance_on_binary,
            )
        if reset_mode not in _RESET_MODES:
            raise ConfigurationError(
                f"reset_mode must be one of {_RESET_MODES}, got {reset_mode!r}"
            )
        self._config = config
        self._reset_mode = reset_mode
        self._window = PrefixStats()
        self._all_values_binary = True
        self._cut_table: CutTable = get_cut_table(
            rho=config.rho, confidence=config.delta_prime, min_length=4
        )

    # ----------------------------------------------------------- properties

    @property
    def config(self) -> OptwinConfig:
        """The validated configuration of this detector."""
        return self._config

    @property
    def window_size(self) -> int:
        """Current number of elements in the sliding window."""
        return len(self._window)

    @property
    def window_mean(self) -> float:
        """Mean of the whole sliding window."""
        return self._window.mean(0, len(self._window))

    @property
    def window_std(self) -> float:
        """Standard deviation of the whole sliding window."""
        return self._window.std(0, len(self._window))

    def current_split(self) -> Optional[SplitSpec]:
        """The split that would be used right now (``None`` if below w_min)."""
        length = len(self._window)
        if length < self._config.w_min:
            return None
        return self._cut_table.spec(length)

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        config = self._config
        window = self._window
        window.append(value)
        if self._all_values_binary and value not in (0.0, 1.0):
            self._all_values_binary = False

        if len(window) < config.w_min:
            return DetectionResult(statistics={"window_size": float(len(window))})
        if len(window) > config.w_max:
            window.popleft()

        length = len(window)
        spec = self._cut_table.spec(length)
        n_hist = spec.n_hist
        n_new = spec.n_new

        mean_hist = window.mean(0, n_hist)
        mean_new = window.mean(n_hist, length)
        var_hist = window.variance(0, n_hist)
        var_new = window.variance(n_hist, length)
        std_hist = math.sqrt(var_hist)
        std_new = math.sqrt(var_new)

        direction_ok = (not config.one_sided) or mean_new >= mean_hist

        f_num = std_new + config.eta
        f_den = std_hist + config.eta
        f_stat = (f_num * f_num) / (f_den * f_den)
        t_stat = welch_statistic(mean_hist, var_hist, n_hist, mean_new, var_new, n_new)

        statistics = {
            "window_size": float(length),
            "nu_split": float(n_hist),
            "mean_hist": mean_hist,
            "mean_new": mean_new,
            "std_hist": std_hist,
            "std_new": std_new,
            "f_statistic": f_stat,
            "f_critical": spec.f_critical,
            "t_statistic": t_stat,
            "t_critical": spec.t_critical,
        }

        mean_shift = abs(mean_new - mean_hist)
        magnitude_ok = (not config.require_magnitude) or (
            mean_shift >= config.rho * std_hist
        )
        # For 0/1 error indicators the variance is a function of the mean, so
        # the F-test would only duplicate (and mis-calibrate) the mean test.
        variance_test_enabled = not (
            config.skip_variance_on_binary and self._all_values_binary
        )

        drift_type: Optional[DriftType] = None
        if variance_test_enabled and direction_ok and f_stat > spec.f_critical:
            drift_type = DriftType.VARIANCE
        elif direction_ok and magnitude_ok and abs(t_stat) > spec.t_critical:
            drift_type = DriftType.MEAN

        if drift_type is not None:
            self._apply_reset(n_hist, length)
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=drift_type,
                statistics=statistics,
            )

        warning = False
        if config.warning_enabled and direction_ok:
            f_warn, t_warn = self._cut_table.warning_critical(
                length, config.warning_delta_prime
            )
            warning = (variance_test_enabled and f_stat > f_warn) or abs(
                t_stat
            ) > t_warn
            statistics["f_warning_critical"] = f_warn
            statistics["t_warning_critical"] = t_warn

        return DetectionResult(warning_detected=warning, statistics=statistics)

    def _apply_reset(self, n_hist: int, length: int) -> None:
        """Shrink the window after a drift according to ``reset_mode``."""
        if self._reset_mode == "full":
            self._window.clear()
            return
        # keep_new: drop the historical sub-window, keep the recent one.
        self._window.popleft_many(n_hist)

    # ------------------------------------------------------- batched updates

    def precompute_tables(self, max_length: Optional[int] = None) -> None:
        """Eagerly build the dense cut arrays (the paper's offline step).

        The batched path grows the tables lazily as the window grows; calling
        this first (e.g. before timing a benchmark) moves that one-time cost
        out of the measured region, matching the paper's Section-3.4 setting
        where all thresholds are pre-computed before the stream starts.
        """
        config = self._config
        limit = config.w_max if max_length is None else min(max_length, config.w_max)
        limit = max(limit, config.w_min)
        self._cut_table.dense(limit, self._warning_confidence())

    def _warning_confidence(self) -> Optional[float]:
        config = self._config
        return config.warning_delta_prime if config.warning_enabled else None

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Feed a chunk of values through the vectorised fast path.

        Between drift resets the F/t statistics of every element in a segment
        are computed at once from the window's cumulative sums, with the split
        specs gathered from the dense pre-computed cut arrays; the scalar code
        path is only re-entered at drift boundaries (where the window is reset)
        and when ``collect_stats`` asks for per-element diagnostics.  Drift and
        warning indices are bit-identical to element-by-element :meth:`update`.
        """
        if collect_stats or type(self)._update_one is not Optwin._update_one:
            # Per-element statistics were requested, or a subclass customised
            # the scalar update — both need the faithful scalar loop.
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        drift_indices: List[int] = []
        warning_indices: List[int] = []
        last_drift = False
        last_warning = False
        last_type: Optional[DriftType] = None
        config = self._config
        threshold = PrefixStats._COMPACT_THRESHOLD
        position = 0
        limit = self._BATCH_CHUNK
        while position < n:
            window = self._window
            if (
                len(window) >= config.w_max
                and window.dead_prefix == threshold - 1
            ):
                # This element's eviction triggers the storage compaction
                # (slice-and-rebase) *before* its statistics are computed.
                # Run it through the scalar path so the rebase happens at
                # exactly the same point as in scalar mode — one scalar
                # element per compaction period keeps the two modes
                # bit-identical even when rebasing perturbs prefix ulps.
                outcome = self._update_one(float(arr[position]))
                if outcome.drift_detected:
                    drift_indices.append(position)
                if outcome.warning_detected:
                    warning_indices.append(position)
                last_drift = outcome.drift_detected
                last_warning = outcome.warning_detected
                last_type = outcome.drift_type
                position += 1
                continue
            consumed, drift_rel, warn_rel, drift_type = self._batch_segment(
                arr, position, limit
            )
            for rel in warn_rel:
                warning_indices.append(position + rel)
            if drift_rel is not None:
                drift_index = position + drift_rel
                drift_indices.append(drift_index)
                warning_indices.append(drift_index)
                last_drift = last_warning = drift_index == n - 1
                last_type = drift_type if last_drift else None
                limit = self._BATCH_RESTART
            else:
                last_drift = False
                last_warning = bool(warn_rel) and warn_rel[-1] == consumed - 1
                last_type = None
                limit = min(limit * 4, self._BATCH_CHUNK)
            position += consumed
        last_result = DetectionResult(
            drift_detected=last_drift,
            warning_detected=last_drift or last_warning,
            drift_type=last_type,
        )
        self._commit_batch(
            n, len(drift_indices), len(warning_indices), last_result
        )
        return BatchResult(n, drift_indices, warning_indices)

    def _batch_segment(
        self, arr: "np.ndarray", position: int, limit: int
    ) -> Tuple[int, Optional[int], List[int], Optional[DriftType]]:
        """Vectorise one segment starting at ``arr[position]``.

        Returns ``(consumed, drift_rel, warning_rels, drift_type)`` where the
        ``rel`` indices are relative to ``position``.  The segment is capped so
        that the storage compaction point can never fall inside it (the caller
        runs the compaction-triggering element itself through the scalar
        path) — scalar and batched execution then drive :class:`PrefixStats`
        through exactly the same sequence of states, which is what makes the
        reported indices (and all downstream statistics) bit-identical.
        """
        config = self._config
        window = self._window
        w0 = len(window)
        remaining = arr.shape[0] - position
        # Strictly below the compaction threshold: after this segment's
        # evictions the dead prefix is at most COMPACT_THRESHOLD - 1, so no
        # rebase happens while the segment's statistics are outstanding.
        seg = min(
            remaining,
            limit,
            (config.w_max - w0)
            + (PrefixStats._COMPACT_THRESHOLD - 1 - window.dead_prefix),
        )
        chunk = arr[position : position + seg]

        # Track the "every value so far is 0/1" flag exactly like the scalar
        # path: the flag for element j includes element j itself.
        binary_chunk = np.logical_or(chunk == 0.0, chunk == 1.0)
        if self._all_values_binary:
            all_binary = np.logical_and.accumulate(binary_chunk)
        else:
            all_binary = np.zeros(seg, dtype=bool)

        max_len = min(w0 + seg, config.w_max)
        start_valid = max(0, config.w_min - w0 - 1)
        window.append_many(chunk)
        if start_valid >= seg:
            # The whole segment is below w_min: no tests, no evictions.
            self._all_values_binary = bool(all_binary[-1])
            return seg, None, [], None

        dense = self._cut_table.dense(max_len, self._warning_confidence())
        prefix, prefix_sq, _, end = window.raw_arrays()
        e0 = end - seg

        jj = np.arange(start_valid, seg, dtype=np.int64)
        total = w0 + 1 + jj
        lens = np.minimum(total, config.w_max)
        hi = e0 + 1 + jj
        lo = hi - lens
        n_hist = dense.n_hist[lens]
        cut = lo + n_hist

        nh_f = n_hist.astype(np.float64)
        nn_f = (lens - n_hist).astype(np.float64)
        sum_hist = prefix[cut] - prefix[lo]
        sum_new = prefix[hi] - prefix[cut]
        sumsq_hist = prefix_sq[cut] - prefix_sq[lo]
        sumsq_new = prefix_sq[hi] - prefix_sq[cut]
        mean_hist = sum_hist / nh_f
        mean_new = sum_new / nn_f
        var_hist = np.maximum(
            (sumsq_hist - nh_f * mean_hist * mean_hist) / (nh_f - 1.0), 0.0
        )
        var_new = np.maximum(
            (sumsq_new - nn_f * mean_new * mean_new) / (nn_f - 1.0), 0.0
        )
        std_hist = np.sqrt(var_hist)
        std_new = np.sqrt(var_new)

        if config.one_sided:
            direction_ok = mean_new >= mean_hist
        else:
            direction_ok = np.ones(jj.shape[0], dtype=bool)

        f_num = std_new + config.eta
        f_den = std_hist + config.eta
        f_stat = (f_num * f_num) / (f_den * f_den)

        # Welch statistic, replicating welch_statistic()'s degenerate handling.
        pooled = var_hist / nh_f + var_new / nn_f
        diff = mean_hist - mean_new
        with np.errstate(divide="ignore", invalid="ignore"):
            t_stat = diff / np.sqrt(pooled)
        degenerate = pooled <= 0.0
        if degenerate.any():
            tolerance = 1e-9 * np.maximum(
                1.0, np.maximum(np.abs(mean_hist), np.abs(mean_new))
            )
            t_degenerate = np.where(
                np.abs(diff) <= tolerance,
                0.0,
                np.where(diff > 0.0, np.inf, -np.inf),
            )
            t_stat = np.where(degenerate, t_degenerate, t_stat)
        abs_t = np.abs(t_stat)

        if config.require_magnitude:
            magnitude_ok = np.abs(mean_new - mean_hist) >= config.rho * std_hist
        else:
            magnitude_ok = np.ones(jj.shape[0], dtype=bool)
        if config.skip_variance_on_binary:
            variance_enabled = ~all_binary[start_valid:]
        else:
            variance_enabled = np.ones(jj.shape[0], dtype=bool)

        variance_drift = (
            variance_enabled & direction_ok & (f_stat > dense.f_critical[lens])
        )
        mean_drift = (
            ~variance_drift
            & direction_ok
            & magnitude_ok
            & (abs_t > dense.t_critical[lens])
        )
        drift = variance_drift | mean_drift

        if config.warning_enabled:
            warning = (
                ~drift
                & direction_ok
                & (
                    (variance_enabled & (f_stat > dense.f_warning[lens]))
                    | (abs_t > dense.t_warning[lens])
                )
            )
        else:
            warning = np.zeros(jj.shape[0], dtype=bool)

        drift_positions = np.flatnonzero(drift)
        if drift_positions.size == 0:
            warn_rel = (np.flatnonzero(warning) + start_valid).tolist()
            evicted = w0 + seg - config.w_max
            if evicted > 0:
                window.popleft_many(evicted)
            self._all_values_binary = bool(all_binary[-1])
            return seg, None, warn_rel, None

        drift_rel_valid = int(drift_positions[0])
        drift_rel = start_valid + drift_rel_valid
        consumed = drift_rel + 1
        warn_rel = (
            np.flatnonzero(warning[:drift_rel_valid]) + start_valid
        ).tolist()
        drift_type = (
            DriftType.VARIANCE if variance_drift[drift_rel_valid] else DriftType.MEAN
        )
        length_at_drift = int(lens[drift_rel_valid])
        n_hist_at_drift = int(n_hist[drift_rel_valid])

        # Rewind the storage to the scalar-mode state at the drift element,
        # then apply the reset exactly like _update_one would.
        window.truncate_last(seg - consumed)
        evicted = w0 + consumed - length_at_drift
        if evicted > 0:
            window.popleft_many(evicted)
        self._apply_reset(n_hist_at_drift, length_at_drift)
        self._all_values_binary = bool(all_binary[drift_rel])
        return consumed, drift_rel, warn_rel, drift_type

    def reset(self) -> None:
        """Clear the sliding window and the bookkeeping counters."""
        self._window.clear()
        self._all_values_binary = True
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        config = self._config
        return {
            "delta": config.delta,
            "rho": config.rho,
            "w_min": config.w_min,
            "w_max": config.w_max,
            "eta": config.eta,
            "one_sided": config.one_sided,
            "warning_delta": config.warning_delta,
            "require_magnitude": config.require_magnitude,
            "skip_variance_on_binary": config.skip_variance_on_binary,
            "reset_mode": self._reset_mode,
        }

    @classmethod
    def from_config_dict(cls, config: Mapping[str, Any]) -> "Optwin":
        # eta is an OptwinConfig field but not an Optwin keyword, so the
        # snapshot config is rebuilt through an explicit OptwinConfig.
        kwargs = dict(config)
        reset_mode = kwargs.pop("reset_mode", "full")
        return cls(config=OptwinConfig(**kwargs), reset_mode=reset_mode)

    def _state_dict(self) -> dict:
        # The cut table is data-independent (cached per configuration), so
        # only the window storage and the binary-input flag are serialized.
        # The window's prefix arrays must be captured verbatim — see
        # PrefixStats.state_dict — for restored detections to stay bit-exact.
        return {
            "window": self._window.state_dict(),
            "all_values_binary": self._all_values_binary,
        }

    def _load_state(self, state: dict) -> None:
        self._window.load_state_dict(state["window"])
        self._all_values_binary = bool(state["all_values_binary"])

    # ------------------------------------------------------------ analysis

    def detectable_shift(self) -> Optional[float]:
        """Smallest guaranteed-detectable mean shift at the current length.

        Returns the right-hand side of Equation 1 at the current split, i.e.
        the shift (in units of ``sigma_hist``) that the configuration
        guarantees to flag, or ``None`` while the window is below ``w_min``.
        """
        spec = self.current_split()
        if spec is None:
            return None
        from repro.core.optimal_cut import detectable_rho

        return detectable_rho(spec.n_hist, spec.n_new, self._config.delta_prime)

    def memory_bytes(self) -> int:
        """Rough upper bound of the detector's resident memory (Section 3.4)."""
        floats_per_entry = 4  # value + prefix sums + spec share, as in the paper
        return self._config.w_max * floats_per_entry * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self._config
        return (
            f"Optwin(delta={cfg.delta}, rho={cfg.rho}, w_min={cfg.w_min}, "
            f"w_max={cfg.w_max}, window_size={self.window_size})"
        )
