"""OPTWIN — the OPTimal WINdow concept-drift detector (Algorithm 1).

OPTWIN keeps a sliding window ``W`` of the error values produced by an online
learner.  At every new element it:

1. looks up the optimal split ``nu`` of the current window length (the largest
   historical window that still guarantees detection of a mean shift of
   ``rho * sigma_hist`` — Equation 1 of the paper),
2. splits ``W`` into ``W_hist`` and ``W_new`` at that point,
3. runs the one-sided F-test on the sub-window variances (Line 11) and the
   Welch t-test on the sub-window means (Line 14), each at the per-test
   confidence ``delta' = delta ** (1/4)``,
4. flags a drift and resets itself when either test rejects.

The split and both test thresholds depend only on the window length, so they
are served from a process-wide pre-computed table
(:mod:`repro.core.ppf_tables`), keeping the per-element cost O(1) amortised.

Example
-------
>>> from repro.core import Optwin
>>> detector = Optwin(delta=0.99, rho=0.5, w_max=1000)
>>> import random
>>> rng = random.Random(7)
>>> drift_points = []
>>> for i in range(2000):
...     error = rng.gauss(0.2, 0.05) if i < 1000 else rng.gauss(0.8, 0.05)
...     if detector.update(error).drift_detected:
...         drift_points.append(i)
>>> len(drift_points) >= 1
True
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import DetectionResult, DriftDetector, DriftType
from repro.core.config import OptwinConfig
from repro.core.optimal_cut import SplitSpec
from repro.core.ppf_tables import CutTable, get_cut_table
from repro.exceptions import ConfigurationError
from repro.stats.distributions import f_ppf, t_ppf
from repro.stats.incremental import PrefixStats
from repro.stats.welch import welch_statistic

__all__ = ["Optwin"]

#: Window contents retained after a drift: drop everything (Algorithm 1's
#: ``reset()``) or keep the post-drift sub-window as the new history.
_RESET_MODES = ("full", "keep_new")


class Optwin(DriftDetector):
    """Optimal-window drift detector of Tosi & Theobald (ICDE 2024).

    Parameters
    ----------
    delta:
        Overall confidence level of the detection, in ``(0, 1)``.
    rho:
        Robustness: minimum shift of the new mean, in units of the historical
        standard deviation, that should count as a drift.
    w_min:
        Minimum number of elements before drifts can be flagged.
    w_max:
        Maximum sliding-window size.
    one_sided:
        Only flag drifts where the monitored value (an error or loss)
        *increased*; this is the behaviour used in the paper's experiments.
    warning_delta:
        Confidence of the relaxed tests that define the warning zone; pass
        ``0.0`` to disable warnings or ``None`` for the default
        ``0.96 * delta``.
    require_magnitude:
        Require the observed mean shift to be at least ``rho * sigma_hist``
        (the paper's definition of robustness) on top of the t-test; this is
        what keeps the false-positive rate low.
    skip_variance_on_binary:
        Skip the F-test while the input looks like a 0/1 error-indicator
        stream (the Bernoulli variance is determined by the mean, so the
        F-test would only add false positives there); real-valued inputs are
        unaffected.
    reset_mode:
        ``"full"`` clears the window after a drift (Algorithm 1); ``"keep_new"``
        keeps ``W_new`` as the new history, which lowers the delay for closely
        spaced drifts.
    config:
        Alternatively, pass a fully built :class:`OptwinConfig`; it overrides
        the individual keyword arguments.

    Notes
    -----
    The detector feeds on any real-valued, per-example measure of learner
    quality: a 0/1 misclassification indicator, a regression loss, or a batch
    loss.  Values do not need to be bounded.
    """

    def __init__(
        self,
        delta: float = 0.99,
        rho: float = 0.5,
        w_min: int = 30,
        w_max: int = 25_000,
        one_sided: bool = True,
        warning_delta: Optional[float] = None,
        require_magnitude: bool = True,
        skip_variance_on_binary: bool = True,
        reset_mode: str = "full",
        config: Optional[OptwinConfig] = None,
    ) -> None:
        super().__init__()
        if config is None:
            config = OptwinConfig(
                delta=delta,
                rho=rho,
                w_min=w_min,
                w_max=w_max,
                one_sided=one_sided,
                warning_delta=warning_delta,
                require_magnitude=require_magnitude,
                skip_variance_on_binary=skip_variance_on_binary,
            )
        if reset_mode not in _RESET_MODES:
            raise ConfigurationError(
                f"reset_mode must be one of {_RESET_MODES}, got {reset_mode!r}"
            )
        self._config = config
        self._reset_mode = reset_mode
        self._window = PrefixStats()
        self._all_values_binary = True
        self._cut_table: CutTable = get_cut_table(
            rho=config.rho, confidence=config.delta_prime, min_length=4
        )

    # ----------------------------------------------------------- properties

    @property
    def config(self) -> OptwinConfig:
        """The validated configuration of this detector."""
        return self._config

    @property
    def window_size(self) -> int:
        """Current number of elements in the sliding window."""
        return len(self._window)

    @property
    def window_mean(self) -> float:
        """Mean of the whole sliding window."""
        return self._window.mean(0, len(self._window))

    @property
    def window_std(self) -> float:
        """Standard deviation of the whole sliding window."""
        return self._window.std(0, len(self._window))

    def current_split(self) -> Optional[SplitSpec]:
        """The split that would be used right now (``None`` if below w_min)."""
        length = len(self._window)
        if length < self._config.w_min:
            return None
        return self._cut_table.spec(length)

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        config = self._config
        window = self._window
        window.append(value)
        if self._all_values_binary and value not in (0.0, 1.0):
            self._all_values_binary = False

        if len(window) < config.w_min:
            return DetectionResult(statistics={"window_size": float(len(window))})
        if len(window) > config.w_max:
            window.popleft()

        length = len(window)
        spec = self._cut_table.spec(length)
        n_hist = spec.n_hist
        n_new = spec.n_new

        mean_hist = window.mean(0, n_hist)
        mean_new = window.mean(n_hist, length)
        var_hist = window.variance(0, n_hist)
        var_new = window.variance(n_hist, length)
        std_hist = var_hist ** 0.5
        std_new = var_new ** 0.5

        direction_ok = (not config.one_sided) or mean_new >= mean_hist

        f_stat = ((std_new + config.eta) ** 2) / ((std_hist + config.eta) ** 2)
        t_stat = welch_statistic(mean_hist, var_hist, n_hist, mean_new, var_new, n_new)

        statistics = {
            "window_size": float(length),
            "nu_split": float(n_hist),
            "mean_hist": mean_hist,
            "mean_new": mean_new,
            "std_hist": std_hist,
            "std_new": std_new,
            "f_statistic": f_stat,
            "f_critical": spec.f_critical,
            "t_statistic": t_stat,
            "t_critical": spec.t_critical,
        }

        mean_shift = abs(mean_new - mean_hist)
        magnitude_ok = (not config.require_magnitude) or (
            mean_shift >= config.rho * std_hist
        )
        # For 0/1 error indicators the variance is a function of the mean, so
        # the F-test would only duplicate (and mis-calibrate) the mean test.
        variance_test_enabled = not (
            config.skip_variance_on_binary and self._all_values_binary
        )

        drift_type: Optional[DriftType] = None
        if variance_test_enabled and direction_ok and f_stat > spec.f_critical:
            drift_type = DriftType.VARIANCE
        elif direction_ok and magnitude_ok and abs(t_stat) > spec.t_critical:
            drift_type = DriftType.MEAN

        if drift_type is not None:
            self._apply_reset(n_hist, length)
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=drift_type,
                statistics=statistics,
            )

        warning = False
        if config.warning_enabled and direction_ok:
            warning_confidence = config.warning_delta_prime
            f_warn = f_ppf(warning_confidence, n_new - 1, n_hist - 1)
            t_warn = t_ppf(warning_confidence, spec.degrees_of_freedom)
            warning = (variance_test_enabled and f_stat > f_warn) or abs(
                t_stat
            ) > t_warn
            statistics["f_warning_critical"] = f_warn
            statistics["t_warning_critical"] = t_warn

        return DetectionResult(warning_detected=warning, statistics=statistics)

    def _apply_reset(self, n_hist: int, length: int) -> None:
        """Shrink the window after a drift according to ``reset_mode``."""
        if self._reset_mode == "full":
            self._window.clear()
            return
        # keep_new: drop the historical sub-window, keep the recent one.
        for _ in range(n_hist):
            self._window.popleft()

    def reset(self) -> None:
        """Clear the sliding window and the bookkeeping counters."""
        self._window.clear()
        self._all_values_binary = True
        self._reset_counters()

    # ------------------------------------------------------------ analysis

    def detectable_shift(self) -> Optional[float]:
        """Smallest guaranteed-detectable mean shift at the current length.

        Returns the right-hand side of Equation 1 at the current split, i.e.
        the shift (in units of ``sigma_hist``) that the configuration
        guarantees to flag, or ``None`` while the window is below ``w_min``.
        """
        spec = self.current_split()
        if spec is None:
            return None
        from repro.core.optimal_cut import detectable_rho

        return detectable_rho(spec.n_hist, spec.n_new, self._config.delta_prime)

    def memory_bytes(self) -> int:
        """Rough upper bound of the detector's resident memory (Section 3.4)."""
        floats_per_entry = 4  # value + prefix sums + spec share, as in the paper
        return self._config.w_max * floats_per_entry * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self._config
        return (
            f"Optwin(delta={cfg.delta}, rho={cfg.rho}, w_min={cfg.w_min}, "
            f"w_max={cfg.w_max}, window_size={self.window_size})"
        )
