"""Per-window-length cut tables (Section 3.4 of the OPTWIN paper).

The optimal split ``nu`` and the two test thresholds depend only on the window
length, the robustness ``rho``, and the per-test confidence ``delta'`` — never
on the data.  The paper therefore pre-computes them once and stores them in
lists indexed by ``|W|``.

:class:`CutTable` reproduces that idea with two usage modes:

* **lazy** (default) — specs are computed on first request and memoised.  The
  computation warm-starts from the nearest previously computed length, so when
  a detector grows its window one element at a time the amortised cost per
  length is O(1).
* **eager** — :meth:`CutTable.precompute` fills the table for every length up
  front, exactly like the paper's offline pre-computation.

Tables are shared process-wide through :func:`get_cut_table`, keyed by
``(rho, confidence, w_min)``, so thirty repetitions of an experiment (or many
detector instances inside a pipeline) pay the pre-computation only once.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.optimal_cut import SplitSpec, optimal_split
from repro.exceptions import ConfigurationError
from repro.stats.distributions import f_ppf, t_ppf

__all__ = ["CutTable", "DenseCutArrays", "get_cut_table", "clear_cut_table_cache"]


class DenseCutArrays:
    """Per-length split specs flattened into dense numpy arrays.

    Index every array by the window length ``|W|``; entries below the table's
    minimum length are zero-filled and must be masked out by the caller.  This
    is the literal Section-3.4 pre-computation layout: one contiguous lookup
    per quantity, so a batched detector can gather the specs for thousands of
    window lengths with a single fancy-indexing operation instead of one
    memoised dict lookup per element.

    Attributes
    ----------
    max_length:
        Largest window length the arrays cover (inclusive).
    warning_confidence:
        Per-test confidence the warning thresholds were computed for, or
        ``None`` when warning thresholds were not materialised (the
        ``f_warning``/``t_warning`` arrays are zero-filled in that case).
    n_hist:
        ``int64`` array; ``n_hist[L]`` is the historical sub-window size.
    f_critical, t_critical:
        ``float64`` arrays mirroring the :class:`SplitSpec` fields.
    f_warning, t_warning:
        ``float64`` arrays with the cached warning-zone critical values.
    """

    __slots__ = (
        "max_length",
        "warning_confidence",
        "n_hist",
        "f_critical",
        "t_critical",
        "f_warning",
        "t_warning",
    )

    def __init__(self, max_length: int, warning_confidence: Optional[float]) -> None:
        size = max_length + 1
        self.max_length = max_length
        self.warning_confidence = warning_confidence
        self.n_hist = np.zeros(size, dtype=np.int64)
        self.f_critical = np.zeros(size, dtype=np.float64)
        self.t_critical = np.zeros(size, dtype=np.float64)
        self.f_warning = np.zeros(size, dtype=np.float64)
        self.t_warning = np.zeros(size, dtype=np.float64)


class CutTable:
    """Memoised map from window length to :class:`SplitSpec`.

    Parameters
    ----------
    rho:
        Robustness parameter of the OPTWIN configuration.
    confidence:
        Per-test confidence ``delta' = delta ** (1/4)``.
    min_length:
        Smallest window length the table will ever be asked for (usually the
        detector's ``w_min``).
    """

    def __init__(self, rho: float, confidence: float, min_length: int = 4) -> None:
        if min_length < 4:
            raise ConfigurationError(f"min_length must be >= 4, got {min_length}")
        self._rho = rho
        self._confidence = confidence
        self._min_length = min_length
        self._specs: Dict[int, SplitSpec] = {}
        self._last_length: Optional[int] = None
        self._lock = threading.Lock()
        self._warning_cache: Dict[Tuple[float, int], Tuple[float, float]] = {}
        self._dense: Dict[Optional[float], DenseCutArrays] = {}
        self._dense_lock = threading.Lock()

    @property
    def rho(self) -> float:
        """Robustness parameter the table was built for."""
        return self._rho

    @property
    def confidence(self) -> float:
        """Per-test confidence the table was built for."""
        return self._confidence

    @property
    def n_cached(self) -> int:
        """Number of window lengths currently memoised."""
        return len(self._specs)

    def spec(self, length: int) -> SplitSpec:
        """Return the :class:`SplitSpec` for a window of ``length`` elements."""
        if length < self._min_length:
            raise ConfigurationError(
                f"length {length} is below the table's minimum {self._min_length}"
            )
        cached = self._specs.get(length)
        if cached is not None:
            return cached
        with self._lock:
            cached = self._specs.get(length)
            if cached is not None:
                return cached
            hint = self._hint_for(length)
            spec = optimal_split(length, self._rho, self._confidence, hint=hint)
            self._specs[length] = spec
            self._last_length = length
            return spec

    def _hint_for(self, length: int) -> Optional[int]:
        """Warm-start split for ``length`` from the nearest computed length."""
        if self._last_length is not None and self._last_length in self._specs:
            nearest = self._specs[self._last_length]
            if nearest.solved:
                return nearest.nu_split
        # Fall back to the closest smaller cached length, if any.
        smaller = [cached for cached in self._specs if cached < length]
        if smaller:
            candidate = self._specs[max(smaller)]
            if candidate.solved:
                return candidate.nu_split
        return None

    def warning_critical(self, length: int, confidence: float) -> Tuple[float, float]:
        """Cached warning-zone critical values ``(f_warn, t_warn)``.

        Like the drift thresholds, the warning-zone thresholds depend only on
        the window length and the (relaxed) per-test confidence, so they are
        memoised here instead of being recomputed from the F/t PPFs on every
        element that reaches the warning branch.
        """
        key = (confidence, length)
        cached = self._warning_cache.get(key)
        if cached is not None:
            return cached
        spec = self.spec(length)
        f_warn = f_ppf(confidence, spec.n_new - 1, spec.n_hist - 1)
        t_warn = t_ppf(confidence, spec.degrees_of_freedom)
        with self._lock:
            self._warning_cache[key] = (f_warn, t_warn)
        return f_warn, t_warn

    def dense(
        self, max_length: int, warning_confidence: Optional[float] = None
    ) -> DenseCutArrays:
        """Return dense per-length spec arrays covering ``[0, max_length]``.

        Arrays are grown lazily and memoised per warning confidence; growth
        copies the already-computed lengths and fills only the new tail, so
        the amortised cost per length stays O(1) as a detector's window grows.
        The returned object is immutable once published — callers may keep a
        reference across updates.
        """
        if max_length < self._min_length:
            raise ConfigurationError(
                f"max_length {max_length} is below the table's minimum "
                f"{self._min_length}"
            )
        current = self._dense.get(warning_confidence)
        if current is not None and current.max_length >= max_length:
            return current
        with self._dense_lock:
            current = self._dense.get(warning_confidence)
            if current is not None and current.max_length >= max_length:
                return current
            dense = DenseCutArrays(max_length, warning_confidence)
            start = self._min_length
            if current is not None:
                keep = current.max_length + 1
                dense.n_hist[:keep] = current.n_hist
                dense.f_critical[:keep] = current.f_critical
                dense.t_critical[:keep] = current.t_critical
                dense.f_warning[:keep] = current.f_warning
                dense.t_warning[:keep] = current.t_warning
                start = keep
            for length in range(start, max_length + 1):
                spec = self.spec(length)
                dense.n_hist[length] = spec.nu_split
                dense.f_critical[length] = spec.f_critical
                dense.t_critical[length] = spec.t_critical
                if warning_confidence is not None:
                    f_warn, t_warn = self.warning_critical(
                        length, warning_confidence
                    )
                    dense.f_warning[length] = f_warn
                    dense.t_warning[length] = t_warn
            self._dense[warning_confidence] = dense
            return dense

    def precompute(self, max_length: int) -> None:
        """Eagerly fill the table for every length up to ``max_length``."""
        if max_length < self._min_length:
            raise ConfigurationError(
                f"max_length {max_length} is below the table's minimum "
                f"{self._min_length}"
            )
        for length in range(self._min_length, max_length + 1):
            self.spec(length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CutTable(rho={self._rho}, confidence={self._confidence:.6f}, "
            f"cached={len(self._specs)})"
        )


_TABLE_CACHE: Dict[Tuple[float, float, int], CutTable] = {}
_TABLE_CACHE_LOCK = threading.Lock()


def get_cut_table(rho: float, confidence: float, min_length: int = 4) -> CutTable:
    """Return the process-wide :class:`CutTable` for this configuration."""
    key = (float(rho), float(confidence), int(min_length))
    table = _TABLE_CACHE.get(key)
    if table is not None:
        return table
    with _TABLE_CACHE_LOCK:
        table = _TABLE_CACHE.get(key)
        if table is None:
            table = CutTable(rho=rho, confidence=confidence, min_length=min_length)
            _TABLE_CACHE[key] = table
        return table


def clear_cut_table_cache() -> None:
    """Drop every cached table (mainly useful in tests and benchmarks)."""
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE.clear()
