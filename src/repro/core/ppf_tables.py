"""Per-window-length cut tables (Section 3.4 of the OPTWIN paper).

The optimal split ``nu`` and the two test thresholds depend only on the window
length, the robustness ``rho``, and the per-test confidence ``delta'`` — never
on the data.  The paper therefore pre-computes them once and stores them in
lists indexed by ``|W|``.

:class:`CutTable` reproduces that idea with two usage modes:

* **lazy** (default) — specs are computed on first request and memoised.  The
  computation warm-starts from the nearest previously computed length, so when
  a detector grows its window one element at a time the amortised cost per
  length is O(1).
* **eager** — :meth:`CutTable.precompute` fills the table for every length up
  front, exactly like the paper's offline pre-computation.

Tables are shared process-wide through :func:`get_cut_table`, keyed by
``(rho, confidence, w_min)``, so thirty repetitions of an experiment (or many
detector instances inside a pipeline) pay the pre-computation only once.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.core.optimal_cut import SplitSpec, optimal_split
from repro.exceptions import ConfigurationError

__all__ = ["CutTable", "get_cut_table", "clear_cut_table_cache"]


class CutTable:
    """Memoised map from window length to :class:`SplitSpec`.

    Parameters
    ----------
    rho:
        Robustness parameter of the OPTWIN configuration.
    confidence:
        Per-test confidence ``delta' = delta ** (1/4)``.
    min_length:
        Smallest window length the table will ever be asked for (usually the
        detector's ``w_min``).
    """

    def __init__(self, rho: float, confidence: float, min_length: int = 4) -> None:
        if min_length < 4:
            raise ConfigurationError(f"min_length must be >= 4, got {min_length}")
        self._rho = rho
        self._confidence = confidence
        self._min_length = min_length
        self._specs: Dict[int, SplitSpec] = {}
        self._last_length: Optional[int] = None
        self._lock = threading.Lock()

    @property
    def rho(self) -> float:
        """Robustness parameter the table was built for."""
        return self._rho

    @property
    def confidence(self) -> float:
        """Per-test confidence the table was built for."""
        return self._confidence

    @property
    def n_cached(self) -> int:
        """Number of window lengths currently memoised."""
        return len(self._specs)

    def spec(self, length: int) -> SplitSpec:
        """Return the :class:`SplitSpec` for a window of ``length`` elements."""
        if length < self._min_length:
            raise ConfigurationError(
                f"length {length} is below the table's minimum {self._min_length}"
            )
        cached = self._specs.get(length)
        if cached is not None:
            return cached
        with self._lock:
            cached = self._specs.get(length)
            if cached is not None:
                return cached
            hint = self._hint_for(length)
            spec = optimal_split(length, self._rho, self._confidence, hint=hint)
            self._specs[length] = spec
            self._last_length = length
            return spec

    def _hint_for(self, length: int) -> Optional[int]:
        """Warm-start split for ``length`` from the nearest computed length."""
        if self._last_length is not None and self._last_length in self._specs:
            nearest = self._specs[self._last_length]
            if nearest.solved:
                return nearest.nu_split
        # Fall back to the closest smaller cached length, if any.
        smaller = [cached for cached in self._specs if cached < length]
        if smaller:
            candidate = self._specs[max(smaller)]
            if candidate.solved:
                return candidate.nu_split
        return None

    def precompute(self, max_length: int) -> None:
        """Eagerly fill the table for every length up to ``max_length``."""
        if max_length < self._min_length:
            raise ConfigurationError(
                f"max_length {max_length} is below the table's minimum "
                f"{self._min_length}"
            )
        for length in range(self._min_length, max_length + 1):
            self.spec(length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CutTable(rho={self._rho}, confidence={self._confidence:.6f}, "
            f"cached={len(self._specs)})"
        )


_TABLE_CACHE: Dict[Tuple[float, float, int], CutTable] = {}
_TABLE_CACHE_LOCK = threading.Lock()


def get_cut_table(rho: float, confidence: float, min_length: int = 4) -> CutTable:
    """Return the process-wide :class:`CutTable` for this configuration."""
    key = (float(rho), float(confidence), int(min_length))
    table = _TABLE_CACHE.get(key)
    if table is not None:
        return table
    with _TABLE_CACHE_LOCK:
        table = _TABLE_CACHE.get(key)
        if table is None:
            table = CutTable(rho=rho, confidence=confidence, min_length=min_length)
            _TABLE_CACHE[key] = table
        return table


def clear_cut_table_cache() -> None:
    """Drop every cached table (mainly useful in tests and benchmarks)."""
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE.clear()
