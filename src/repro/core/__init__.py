"""OPTWIN core: the paper's primary contribution.

Public surface:

* :class:`repro.core.optwin.Optwin` — the detector itself.
* :class:`repro.core.config.OptwinConfig` — validated parameters.
* :class:`repro.core.base.DriftDetector` — the interface every detector
  (OPTWIN and the baselines in :mod:`repro.detectors`) implements.
* :mod:`repro.core.optimal_cut` / :mod:`repro.core.ppf_tables` — the
  data-independent optimal-cut machinery.
"""

from repro.core.base import (
    SNAPSHOT_SCHEMA_VERSION,
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
)
from repro.core.config import OptwinConfig
from repro.core.optimal_cut import (
    SplitSpec,
    detectable_rho,
    minimum_solvable_length,
    optimal_split,
    rho_temp,
    welch_df_upper_bound,
)
from repro.core.optwin import Optwin
from repro.core.ppf_tables import (
    CutTable,
    DenseCutArrays,
    clear_cut_table_cache,
    get_cut_table,
)

__all__ = [
    "Optwin",
    "OptwinConfig",
    "SNAPSHOT_SCHEMA_VERSION",
    "DriftDetector",
    "DetectionResult",
    "BatchResult",
    "DriftType",
    "SplitSpec",
    "optimal_split",
    "detectable_rho",
    "rho_temp",
    "welch_df_upper_bound",
    "minimum_solvable_length",
    "CutTable",
    "DenseCutArrays",
    "get_cut_table",
    "clear_cut_table_cache",
]
