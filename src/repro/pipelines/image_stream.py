"""Synthetic image-like batch stream with label-swap concept drifts.

The paper's neural-network experiment (Figure 5) streams batches of 32
CIFAR-10 images and provokes concept drifts by swapping the labels of two
classes every 20% of the stream.  This module provides the offline surrogate
(DESIGN.md §3): each "image" is a feature vector drawn from a class-specific
Gaussian cluster (with small within-class structure), so a pre-trained MLP
achieves high accuracy, and swapping two class labels produces exactly the
loss jump the drift detector is supposed to notice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ImageBatch", "SyntheticImageStream"]


@dataclass(frozen=True)
class ImageBatch:
    """One mini-batch of the synthetic image stream.

    Attributes
    ----------
    x:
        Feature matrix of shape ``(batch_size, n_features)``.
    y:
        Integer labels of shape ``(batch_size,)`` — already reflecting any
        active label swap (i.e. the labels the pipeline observes).
    index:
        0-based position of the batch in the stream.
    """

    x: np.ndarray
    y: np.ndarray
    index: int


class SyntheticImageStream:
    """CIFAR-10-like batch stream with periodic label-swap drifts.

    Parameters
    ----------
    n_classes:
        Number of classes (10, matching CIFAR-10).
    n_features:
        Dimensionality of the flattened "images".
    batch_size:
        Number of examples per batch (32 in the paper).
    n_batches:
        Total number of batches in the stream.
    n_drifts:
        Number of label-swap drifts, evenly spaced over the stream.
    class_separation:
        Distance between class cluster centres; larger values make the
        pre-drift problem easier.
    seed:
        Random seed.
    """

    def __init__(
        self,
        n_classes: int = 10,
        n_features: int = 64,
        batch_size: int = 32,
        n_batches: int = 2000,
        n_drifts: int = 4,
        class_separation: float = 3.0,
        seed: int = 1,
    ) -> None:
        if n_classes < 2:
            raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
        if batch_size < 1 or n_batches < 1:
            raise ConfigurationError("batch_size and n_batches must be >= 1")
        if n_drifts < 0 or n_drifts >= n_batches:
            raise ConfigurationError(
                f"n_drifts must be in [0, n_batches), got {n_drifts}"
            )
        self._n_classes = n_classes
        self._n_features = n_features
        self._batch_size = batch_size
        self._n_batches = n_batches
        self._n_drifts = n_drifts
        self._seed = seed
        self._class_separation = class_separation

        model_rng = np.random.default_rng(seed)
        self._centres = model_rng.normal(
            0.0, class_separation, size=(n_classes, n_features)
        )
        self._within_class_std = 1.0
        self._drift_batches = self._layout_drifts()
        self._swaps = self._layout_swaps()

    # ----------------------------------------------------------- properties

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return self._n_classes

    @property
    def n_features(self) -> int:
        """Dimensionality of each example."""
        return self._n_features

    @property
    def batch_size(self) -> int:
        """Examples per batch."""
        return self._batch_size

    @property
    def n_batches(self) -> int:
        """Total number of batches."""
        return self._n_batches

    @property
    def drift_batches(self) -> Tuple[int, ...]:
        """Batch indices at which a label swap takes effect."""
        return tuple(self._drift_batches)

    @property
    def swaps(self) -> List[Tuple[int, int]]:
        """The (class_a, class_b) pair swapped at each drift."""
        return list(self._swaps)

    # ------------------------------------------------------------ internals

    def _layout_drifts(self) -> List[int]:
        if self._n_drifts == 0:
            return []
        spacing = self._n_batches // (self._n_drifts + 1)
        return [spacing * (index + 1) for index in range(self._n_drifts)]

    def _layout_swaps(self) -> List[Tuple[int, int]]:
        swap_rng = np.random.default_rng(self._seed + 31)
        swaps: List[Tuple[int, int]] = []
        for _ in range(self._n_drifts):
            a, b = swap_rng.choice(self._n_classes, size=2, replace=False)
            swaps.append((int(a), int(b)))
        return swaps

    def _label_map_at(self, batch_index: int) -> np.ndarray:
        """Current class->label mapping, cumulative over past swaps."""
        mapping = np.arange(self._n_classes)
        for drift_batch, (a, b) in zip(self._drift_batches, self._swaps):
            if batch_index >= drift_batch:
                mapping[a], mapping[b] = mapping[b], mapping[a]
        return mapping

    # ------------------------------------------------------------ sampling

    def pretraining_set(self, n_examples: int = 5000, seed: int = 99) -> Tuple[np.ndarray, np.ndarray]:
        """A fixed dataset drawn from the *pre-drift* concept for pre-training."""
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, self._n_classes, size=n_examples)
        x = self._centres[labels] + rng.normal(
            0.0, self._within_class_std, size=(n_examples, self._n_features)
        )
        return x, labels

    def batch(self, batch_index: int) -> ImageBatch:
        """Generate the batch at position ``batch_index`` (deterministic)."""
        if not 0 <= batch_index < self._n_batches:
            raise ConfigurationError(
                f"batch_index must be in [0, {self._n_batches}), got {batch_index}"
            )
        rng = np.random.default_rng(self._seed * 1_000_003 + batch_index)
        true_classes = rng.integers(0, self._n_classes, size=self._batch_size)
        x = self._centres[true_classes] + rng.normal(
            0.0, self._within_class_std, size=(self._batch_size, self._n_features)
        )
        mapping = self._label_map_at(batch_index)
        observed_labels = mapping[true_classes]
        return ImageBatch(x=x, y=observed_labels, index=batch_index)

    def __iter__(self) -> Iterator[ImageBatch]:
        for batch_index in range(self._n_batches):
            yield self.batch(batch_index)

    def __len__(self) -> int:
        return self._n_batches
