"""Drift-aware online-learning pipelines (the Figure-5 experiment substrate)."""

from repro.pipelines.image_stream import ImageBatch, SyntheticImageStream
from repro.pipelines.online_learning import DriftAwarePipeline, OnlineLearningReport
from repro.pipelines.retraining import (
    FineTunePolicy,
    PolicyDecision,
    ResetPolicy,
    RetrainingPolicy,
)

__all__ = [
    "ImageBatch",
    "SyntheticImageStream",
    "DriftAwarePipeline",
    "OnlineLearningReport",
    "RetrainingPolicy",
    "FineTunePolicy",
    "ResetPolicy",
    "PolicyDecision",
]
