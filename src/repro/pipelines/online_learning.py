"""Drift-aware online-learning pipeline over batch streams (Figure 5).

The pipeline reproduces the paper's neural-network experiment end to end:

1. pre-train a model (the MLP surrogate of the CNN) on the pre-drift concept;
2. stream mini-batches; for each batch, evaluate the model and feed the batch
   loss to the drift detector;
3. when a drift is flagged, fine-tune the model on the next ``fine_tune_batches``
   batches (the paper uses the equivalent of three epochs);
4. record every detection, the number of batches spent retraining, and the
   wall-clock time split between detection and retraining.

The comparison OPTWIN vs ADWIN in Figure 5 is then a matter of running the
pipeline twice with different detectors over the *same* stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.base import DriftDetector
from repro.exceptions import ConfigurationError
from repro.learners.mlp import MLPClassifier
from repro.pipelines.image_stream import SyntheticImageStream
from repro.pipelines.retraining import FineTunePolicy, RetrainingPolicy

__all__ = ["OnlineLearningReport", "DriftAwarePipeline"]


@dataclass
class OnlineLearningReport:
    """Outcome of one drift-aware online-learning run.

    Attributes
    ----------
    detections:
        Batch indices at which the detector flagged a drift.
    losses:
        Per-batch evaluation loss (what the detector consumed).
    accuracies:
        Per-batch evaluation accuracy.
    n_retraining_batches:
        Total number of batches used for fine-tuning.
    detector_seconds:
        Wall-clock time spent inside the drift detector.
    retraining_seconds:
        Wall-clock time spent fine-tuning the model.
    total_seconds:
        Total wall-clock time of the run.
    """

    detections: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    n_retraining_batches: int = 0
    detector_seconds: float = 0.0
    retraining_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def n_detections(self) -> int:
        """Number of drifts flagged during the run."""
        return len(self.detections)

    @property
    def mean_accuracy(self) -> float:
        """Mean per-batch accuracy over the whole run."""
        if not self.accuracies:
            return 0.0
        return sum(self.accuracies) / len(self.accuracies)


class DriftAwarePipeline:
    """Online-learning pipeline that retrains on detector-flagged drifts.

    Parameters
    ----------
    model:
        The (pre-trained) batch learner.
    detector:
        The drift detector fed with per-batch losses.
    policy:
        Retraining policy; defaults to fine-tuning for ``fine_tune_batches``.
    fine_tune_batches:
        Convenience parameter for the default :class:`FineTunePolicy`.
    """

    def __init__(
        self,
        model: MLPClassifier,
        detector: DriftDetector,
        policy: Optional[RetrainingPolicy] = None,
        fine_tune_batches: int = 60,
    ) -> None:
        if policy is None:
            policy = FineTunePolicy(n_batches=fine_tune_batches)
        self._model = model
        self._detector = detector
        self._policy = policy

    @property
    def model(self) -> MLPClassifier:
        """The learner driven by the pipeline."""
        return self._model

    @property
    def detector(self) -> DriftDetector:
        """The drift detector driven by the pipeline."""
        return self._detector

    def run(self, stream: SyntheticImageStream) -> OnlineLearningReport:
        """Process every batch of ``stream`` and return the full report."""
        if stream.n_batches < 1:
            raise ConfigurationError("the stream must contain at least one batch")
        report = OnlineLearningReport()
        run_start = time.perf_counter()

        for batch in stream:
            loss, accuracy = self._model.evaluate_batch(batch.x, batch.y)
            report.losses.append(loss)
            report.accuracies.append(accuracy)

            detect_start = time.perf_counter()
            outcome = self._detector.update(loss)
            report.detector_seconds += time.perf_counter() - detect_start

            if outcome.drift_detected:
                report.detections.append(batch.index)

            decision = self._policy.on_batch(
                drift_detected=outcome.drift_detected,
                warning_detected=outcome.warning_detected,
            )
            if decision.reset_model:
                self._model.reset()
            if decision.train:
                train_start = time.perf_counter()
                self._model.train_batch(batch.x, batch.y)
                report.retraining_seconds += time.perf_counter() - train_start
                report.n_retraining_batches += 1

        report.total_seconds = time.perf_counter() - run_start
        return report
