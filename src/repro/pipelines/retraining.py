"""Retraining policies for drift-aware online-learning pipelines.

The paper's adaptation strategy is "fine-tune for a fixed number of batches
after every detected drift" (the equivalent of three epochs in the Figure-5
experiment).  Other common strategies — full reset, or warning-triggered
background training — are provided as alternatives used by the examples and
the ablation benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["RetrainingPolicy", "FineTunePolicy", "ResetPolicy", "PolicyDecision"]


@dataclass(frozen=True)
class PolicyDecision:
    """What the pipeline should do with the current batch.

    Attributes
    ----------
    train:
        Whether the model should be trained on the batch.
    reset_model:
        Whether the model should be re-initialised before training.
    """

    train: bool
    reset_model: bool = False


class RetrainingPolicy(abc.ABC):
    """Decides, batch by batch, whether the model should be (re)trained."""

    @abc.abstractmethod
    def on_batch(self, drift_detected: bool, warning_detected: bool) -> PolicyDecision:
        """Return the decision for the current batch, given detector output."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget any pending retraining state."""


class FineTunePolicy(RetrainingPolicy):
    """Fine-tune for a fixed number of batches after every detected drift.

    Parameters
    ----------
    n_batches:
        How many consecutive batches to train on after a drift (9,372 in the
        paper's CIFAR-10 experiment, i.e. three epochs of 3,124 batches).
    """

    def __init__(self, n_batches: int) -> None:
        if n_batches < 1:
            raise ConfigurationError(f"n_batches must be >= 1, got {n_batches}")
        self._n_batches = n_batches
        self._remaining = 0

    @property
    def remaining(self) -> int:
        """Batches of fine-tuning still pending."""
        return self._remaining

    def on_batch(self, drift_detected: bool, warning_detected: bool) -> PolicyDecision:
        if drift_detected:
            self._remaining = self._n_batches
        if self._remaining > 0:
            self._remaining -= 1
            return PolicyDecision(train=True)
        return PolicyDecision(train=False)

    def reset(self) -> None:
        self._remaining = 0


class ResetPolicy(RetrainingPolicy):
    """Re-initialise the model on drift, then train continuously for a while.

    Parameters
    ----------
    n_batches:
        Number of batches trained from scratch after each drift.
    """

    def __init__(self, n_batches: int) -> None:
        if n_batches < 1:
            raise ConfigurationError(f"n_batches must be >= 1, got {n_batches}")
        self._n_batches = n_batches
        self._remaining = 0

    def on_batch(self, drift_detected: bool, warning_detected: bool) -> PolicyDecision:
        reset_now = False
        if drift_detected:
            self._remaining = self._n_batches
            reset_now = True
        if self._remaining > 0:
            self._remaining -= 1
            return PolicyDecision(train=True, reset_model=reset_now)
        return PolicyDecision(train=False)

    def reset(self) -> None:
        self._remaining = 0
