"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration problems from runtime problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a detector, stream, or learner receives invalid parameters."""


class NotEnoughDataError(ReproError, RuntimeError):
    """Raised when a statistic is requested before enough data was observed."""


class StreamExhaustedError(ReproError, StopIteration):
    """Raised when a bounded stream is asked for more instances than it holds."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when a learner is asked to predict before seeing any data."""


class SnapshotError(ReproError, RuntimeError):
    """Raised when a detector or hub snapshot cannot be taken or restored.

    Covers schema-version mismatches, class mismatches between a snapshot and
    the detector it is loaded into, and corrupted checkpoint payloads.
    """


class ShardError(ReproError, RuntimeError):
    """Raised when a sharded-hub worker process has died or stopped responding.

    The shard's monitors are unavailable until the worker is respawned (see
    :meth:`repro.serving.sharded.ShardedHub.respawn_shard`), which resumes it
    from the shard's own checkpoint.
    """
