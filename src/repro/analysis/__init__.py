"""AST-based invariant linter for the repro codebase.

``python -m repro.analysis`` statically enforces the contracts the rest of
the repository only defends with golden tests after the fact:

* **determinism** — no unseeded RNG or clock reads on replayable paths;
* **durability** — serving-layer writes go through ``atomic_write_json`` or
  the WAL framing;
* **snapshot-contract** — detectors implement both snapshot halves, are
  registered in ``exported_detector_classes()``, and match the committed
  schema-lock manifest;
* **broad-except** — swallowed exceptions surface in stats counters or carry
  a written justification;
* **deprecated-symbol** — internal callers keep off deprecated symbols.

Suppressions require a reason (``# repro: allow(<rule>) -- <why>``),
grandfathered findings live in a checked-in baseline, and the CLI exits
non-zero on anything new — which is what the CI ``lint`` job gates on.
See ``docs/static-analysis.md`` for the full catalogue and workflows.
"""

from repro.analysis.baseline import (
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    RULE_SUPPRESSION_HYGIENE,
    RULE_SYNTAX_ERROR,
    RULE_UNUSED_SUPPRESSION,
    Finding,
    ModuleInfo,
    Project,
    Report,
    Rule,
    Suppression,
    run_rules,
    scan_paths,
)
from repro.analysis.rules import ALL_RULES, all_rules, rules_by_id, select_rules
from repro.analysis.schema_lock import (
    default_lock_path,
    diff_lock,
    generate_lock,
    load_lock,
    write_lock,
)

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "Report",
    "Rule",
    "Suppression",
    "scan_paths",
    "run_rules",
    "RULE_SYNTAX_ERROR",
    "RULE_SUPPRESSION_HYGIENE",
    "RULE_UNUSED_SUPPRESSION",
    "ALL_RULES",
    "all_rules",
    "rules_by_id",
    "select_rules",
    "default_baseline_path",
    "load_baseline",
    "write_baseline",
    "default_lock_path",
    "generate_lock",
    "load_lock",
    "write_lock",
    "diff_lock",
]
