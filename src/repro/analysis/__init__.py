"""AST-based invariant linter for the repro codebase.

``python -m repro.analysis`` statically enforces the contracts the rest of
the repository only defends with golden tests after the fact:

* **determinism** — no unseeded RNG or clock reads on replayable paths;
* **durability** — serving-layer writes go through ``atomic_write_json`` or
  the WAL framing;
* **snapshot-contract** — detectors implement both snapshot halves, are
  registered in ``exported_detector_classes()``, and match the committed
  schema-lock manifest;
* **broad-except** — swallowed exceptions surface in stats counters or carry
  a written justification;
* **deprecated-symbol** — internal callers keep off deprecated symbols;
* **async-blocking** — no blocking I/O (fsync, pipe recv, hub ops, sleep)
  reachable from an ``async def`` without executor offload;
* **resource-leak** — acquired files/pipes/shared-memory/executors are
  released on *every* CFG path, exception edges included;
* **fork-safety** — ``multiprocessing`` worker entrypoints never touch
  inherited module-level RNGs, locks, or file handles.

The last three are control-flow-aware: they reason over per-function CFGs
(:mod:`repro.analysis.cfg`) and a gen/kill fixpoint
(:mod:`repro.analysis.dataflow`) rather than single AST nodes.  A separate
engine-level check diffs the serving dispatch against the committed
``wire_protocol.lock.json`` (:mod:`repro.analysis.wire_lock`) so protocol
drift fails lint until sanctioned with ``--update-wire-lock``.

Suppressions require a reason (``# repro: allow(<rule>) -- <why>``),
grandfathered findings live in a checked-in baseline, and the CLI exits
non-zero on anything new — which is what the CI ``lint`` job gates on.
See ``docs/static-analysis.md`` for the full catalogue and workflows.
"""

from repro.analysis.baseline import (
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.analysis.cfg import CFG, build_cfg, function_cfgs
from repro.analysis.dataflow import FixpointResult, run_forward
from repro.analysis.engine import (
    RULE_SUPPRESSION_HYGIENE,
    RULE_SYNTAX_ERROR,
    RULE_UNUSED_SUPPRESSION,
    RULE_WIRE_PROTOCOL,
    Finding,
    ModuleInfo,
    Project,
    Report,
    Rule,
    Suppression,
    run_rules,
    scan_paths,
)
from repro.analysis.rules import ALL_RULES, all_rules, rules_by_id, select_rules
from repro.analysis.schema_lock import (
    default_lock_path,
    diff_lock,
    generate_lock,
    load_lock,
    write_lock,
)
from repro.analysis.wire_lock import (
    default_wire_lock_path,
    diff_wire_lock,
    generate_wire_lock,
    load_wire_lock,
    write_wire_lock,
)

__all__ = [
    "CFG",
    "build_cfg",
    "function_cfgs",
    "FixpointResult",
    "run_forward",
    "Finding",
    "ModuleInfo",
    "Project",
    "Report",
    "Rule",
    "Suppression",
    "scan_paths",
    "run_rules",
    "RULE_SYNTAX_ERROR",
    "RULE_SUPPRESSION_HYGIENE",
    "RULE_UNUSED_SUPPRESSION",
    "RULE_WIRE_PROTOCOL",
    "ALL_RULES",
    "all_rules",
    "rules_by_id",
    "select_rules",
    "default_baseline_path",
    "load_baseline",
    "write_baseline",
    "default_lock_path",
    "generate_lock",
    "load_lock",
    "write_lock",
    "diff_lock",
    "default_wire_lock_path",
    "generate_wire_lock",
    "load_wire_lock",
    "write_wire_lock",
    "diff_wire_lock",
]
