"""Core of the ``repro.analysis`` static-analysis framework.

The engine is deliberately self-contained (stdlib ``ast`` only — no
third-party linting dependencies) and project-aware: rules do not see one
file at a time, they see a :class:`Project` of parsed modules, which is what
lets cross-module contracts (registry reachability, deprecated-symbol use)
be checked statically.

Pipeline
--------

1. :func:`scan_paths` walks the target directories, parses every ``*.py``
   file into a :class:`ModuleInfo` (source, AST, suppression comments), and
   assembles a :class:`Project`.
2. Each registered :class:`Rule` runs over the project and yields
   :class:`Finding` objects.
3. Suppression comments (``# repro: allow(<rule>) -- <why>``) silence
   findings on their line (or, for ``allow-file``, their file).  A
   suppression **must** carry a reason after ``--``; one that does not is
   itself a finding, as is a suppression that silenced nothing.
4. A baseline file of grandfathered fingerprints filters what remains (see
   :mod:`repro.analysis.baseline`).
5. Anything left fails the run (exit code 1 from the CLI).

Rules are small classes registered in :mod:`repro.analysis.rules`; see
``docs/static-analysis.md`` for the catalogue and for how to add one.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Suppression",
    "ModuleInfo",
    "Project",
    "Rule",
    "Report",
    "scan_paths",
    "run_rules",
    "SUPPRESSION_RE",
    "RULE_SYNTAX_ERROR",
    "RULE_SUPPRESSION_HYGIENE",
    "RULE_UNUSED_SUPPRESSION",
    "RULE_WIRE_PROTOCOL",
]

#: Engine-level pseudo-rule ids (reported like rule findings, listed in the
#: catalogue, valid in baselines — but not suppressible, so the suppression
#: machinery cannot silence complaints about itself).  ``wire-protocol``
#: lives here too: protocol drift is sanctioned by ``--update-wire-lock``,
#: never by a comment.
RULE_SYNTAX_ERROR = "syntax-error"
RULE_SUPPRESSION_HYGIENE = "suppression-hygiene"
RULE_UNUSED_SUPPRESSION = "unused-suppression"
RULE_WIRE_PROTOCOL = "wire-protocol"

ENGINE_RULE_IDS = (
    RULE_SYNTAX_ERROR,
    RULE_SUPPRESSION_HYGIENE,
    RULE_UNUSED_SUPPRESSION,
    RULE_WIRE_PROTOCOL,
)

#: Matches ``allow(rule-a, rule-b) -- reason`` and ``allow-file(rule) --
#: reason`` comment forms (prefixed by a hash and the marker word).  The
#: reason group is optional in the regex so that a missing reason can be
#: *diagnosed* rather than the comment silently not parsing.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>allow|allow-file)\s*"
    r"\(\s*(?P<rules>[^)]*?)\s*\)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style path relative to the scan root
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """A parsed ``# repro: allow(...)`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]
    file_scope: bool
    used: bool = False


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    rel_path: str  # posix, relative to the scan root
    source: str
    lines: List[str]
    tree: Optional[ast.Module]
    suppressions: List[Suppression] = field(default_factory=list)
    syntax_error: Optional[str] = None

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(self.rel_path.split("/"))

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Project:
    """Every module of one analysis run plus run-level options."""

    def __init__(self, modules: Sequence[ModuleInfo], options: Optional[Dict[str, object]] = None) -> None:
        self.modules: List[ModuleInfo] = list(modules)
        self.options: Dict[str, object] = dict(options or {})
        self._by_rel: Dict[str, ModuleInfo] = {m.rel_path: m for m in self.modules}

    def module(self, rel_path: str) -> Optional[ModuleInfo]:
        return self._by_rel.get(rel_path)

    def modules_under(self, *parts: str) -> Iterator[ModuleInfo]:
        """Modules whose relative path contains all of ``parts`` as components."""
        wanted = set(parts)
        for info in self.modules:
            if wanted.issubset(info.parts):
                yield info


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`id` / :attr:`description` and implement
    :meth:`check`.  Rules are stateless; one instance serves every run.
    """

    id: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------- helpers

    @staticmethod
    def dotted_name(node: ast.AST) -> Optional[str]:
        """Render ``a.b.c`` for a Name/Attribute chain, else ``None``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    @staticmethod
    def qualname_stack(tree: ast.Module) -> Dict[int, str]:
        """Map every node id to its enclosing dotted qualname.

        Returns ``{id(node): "Class.method"}`` for every node in ``tree``;
        module-level nodes map to ``""``.
        """
        qualnames: Dict[int, str] = {}

        def visit(node: ast.AST, stack: Tuple[str, ...]) -> None:
            for child in ast.iter_child_nodes(node):
                child_stack = stack
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    child_stack = stack + (child.name,)
                qualnames[id(child)] = ".".join(child_stack)
                visit(child, child_stack)

        qualnames[id(tree)] = ""
        visit(tree, ())
        return qualnames


@dataclass
class Report:
    """Outcome of one engine run, before output formatting."""

    findings: List[Finding]
    n_suppressed: int
    n_baselined: int
    stale_baseline: List[str]  # fingerprints in the baseline that no longer fire

    @property
    def clean(self) -> bool:
        return not self.findings


# ----------------------------------------------------------------- scanning


def _iter_comments(source: str, lines: Sequence[str]) -> Iterator[Tuple[int, str]]:
    """``(line, comment_text)`` for every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps suppression
    syntax *written about* inside docstrings — like the examples in this
    module — from being parsed as live suppressions.  Falls back to a plain
    line scan when the file does not tokenize (its syntax error is reported
    separately).
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, text in enumerate(lines, start=1):
            comment_at = text.find("#")
            if comment_at >= 0:
                yield lineno, text[comment_at:]


def _parse_suppressions(source: str, lines: Sequence[str]) -> List[Suppression]:
    suppressions: List[Suppression] = []
    for lineno, comment in _iter_comments(source, lines):
        if "repro:" not in comment:
            continue
        match = SUPPRESSION_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            token.strip() for token in match.group("rules").split(",") if token.strip()
        )
        suppressions.append(
            Suppression(
                line=lineno,
                rules=rules,
                reason=match.group("reason"),
                file_scope=match.group("kind") == "allow-file",
            )
        )
    return suppressions


def _iter_source_files(path: Path) -> Iterator[Path]:
    if path.is_file():
        yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        if "__pycache__" in candidate.parts:
            continue
        yield candidate


def scan_paths(paths: Sequence[Path], options: Optional[Dict[str, object]] = None) -> Project:
    """Parse every python file under ``paths`` into a :class:`Project`.

    Relative paths are computed against each argument's *parent* when the
    argument is a package directory (one containing ``__init__.py``), so the
    package name stays a path component — ``repro/serving/hub.py`` — which is
    what the rules' path scoping matches on.
    """
    modules: List[ModuleInfo] = []
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw).resolve()
        if root.is_dir() and (root / "__init__.py").exists():
            base = root.parent
        elif root.is_file():
            base = root.parent
        else:
            base = root
        for file_path in _iter_source_files(root):
            if file_path in seen:
                continue
            seen.add(file_path)
            source = file_path.read_text(encoding="utf-8")
            lines = source.splitlines()
            tree: Optional[ast.Module] = None
            syntax_error: Optional[str] = None
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError as exc:
                syntax_error = f"{exc.msg} (line {exc.lineno})"
            modules.append(
                ModuleInfo(
                    path=file_path,
                    rel_path=file_path.relative_to(base).as_posix(),
                    source=source,
                    lines=lines,
                    tree=tree,
                    suppressions=_parse_suppressions(source, lines),
                    syntax_error=syntax_error,
                )
            )
    return Project(modules, options)


# ------------------------------------------------------------------ running


def _engine_findings(project: Project, known_rules: Set[str]) -> List[Finding]:
    """Findings about the scan itself: syntax errors, malformed suppressions."""
    findings: List[Finding] = []
    for info in project.modules:
        if info.syntax_error is not None:
            findings.append(
                Finding(
                    rule=RULE_SYNTAX_ERROR,
                    path=info.rel_path,
                    line=1,
                    col=0,
                    message=f"file does not parse: {info.syntax_error}",
                )
            )
        for supp in info.suppressions:
            if not supp.reason:
                findings.append(
                    Finding(
                        rule=RULE_SUPPRESSION_HYGIENE,
                        path=info.rel_path,
                        line=supp.line,
                        col=0,
                        message=(
                            "suppression must carry a written reason: "
                            "`# repro: allow(<rule>) -- <why>`"
                        ),
                    )
                )
            if not supp.rules:
                findings.append(
                    Finding(
                        rule=RULE_SUPPRESSION_HYGIENE,
                        path=info.rel_path,
                        line=supp.line,
                        col=0,
                        message="suppression names no rule: `# repro: allow(<rule>) -- <why>`",
                    )
                )
            for rule_id in supp.rules:
                if rule_id in ENGINE_RULE_IDS:
                    findings.append(
                        Finding(
                            rule=RULE_SUPPRESSION_HYGIENE,
                            path=info.rel_path,
                            line=supp.line,
                            col=0,
                            message=f"engine rule {rule_id!r} cannot be suppressed",
                        )
                    )
                elif rule_id not in known_rules:
                    findings.append(
                        Finding(
                            rule=RULE_SUPPRESSION_HYGIENE,
                            path=info.rel_path,
                            line=supp.line,
                            col=0,
                            message=(
                                f"suppression names unknown rule {rule_id!r}; "
                                f"known rules: {', '.join(sorted(known_rules))}"
                            ),
                        )
                    )
    return findings


def _apply_suppressions(
    project: Project, findings: Iterable[Finding], executed_rules: Set[str]
) -> Tuple[List[Finding], int]:
    """Drop findings silenced by a suppression; mark the suppressions used."""
    kept: List[Finding] = []
    n_suppressed = 0
    by_path: Dict[str, ModuleInfo] = {m.rel_path: m for m in project.modules}
    for finding in findings:
        info = by_path.get(finding.path)
        silenced = False
        if info is not None and finding.rule not in ENGINE_RULE_IDS:
            for supp in info.suppressions:
                if finding.rule not in supp.rules:
                    continue
                if supp.file_scope or supp.line == finding.line:
                    supp.used = True
                    silenced = True
        if silenced:
            n_suppressed += 1
        else:
            kept.append(finding)
    # A suppression that silenced nothing is dead weight — or a typo hiding a
    # real hole.  Only flag it when every rule it names actually ran, so
    # filtered runs (--rules) do not produce false positives.
    for info in project.modules:
        for supp in info.suppressions:
            if supp.used or not supp.rules or not supp.reason:
                continue
            if not set(supp.rules) <= executed_rules:
                continue
            kept.append(
                Finding(
                    rule=RULE_UNUSED_SUPPRESSION,
                    path=info.rel_path,
                    line=supp.line,
                    col=0,
                    message=(
                        "suppression for "
                        + ", ".join(sorted(supp.rules))
                        + " silences nothing; delete it"
                    ),
                )
            )
    return kept, n_suppressed


def run_rules(
    project: Project,
    rules: Sequence[Rule],
    baseline_fingerprints: Optional[Set[str]] = None,
) -> Report:
    """Run ``rules`` over ``project`` and post-process the findings.

    ``baseline_fingerprints`` (see :mod:`repro.analysis.baseline`) removes
    grandfathered findings; fingerprints that no longer match anything are
    reported back as stale so the baseline can be pruned.
    """
    known = {rule.id for rule in rules}
    # "Unknown rule" hygiene must check against the *full* catalogue, not the
    # selected subset — otherwise `--rules X` would flag every suppression
    # for the rules that merely did not run.  Lazy import: the rules package
    # imports this module.
    try:
        from repro.analysis.rules import rules_by_id

        catalogue = known | set(rules_by_id())
    except ImportError:  # pragma: no cover - embedded/partial installs
        catalogue = known
    findings: List[Finding] = _engine_findings(project, catalogue)
    for rule in rules:
        findings.extend(rule.check(project))
    wire_lock_path = project.options.get("wire_lock_path")
    if wire_lock_path:
        # Engine-level like the suppression checks: wire-protocol drift is
        # sanctioned with --update-wire-lock, not silenced with a comment.
        from repro.analysis.wire_lock import wire_findings

        findings.extend(wire_findings(project, Path(str(wire_lock_path))))
    executed = known | set(ENGINE_RULE_IDS)
    findings, n_suppressed = _apply_suppressions(project, findings, executed)

    n_baselined = 0
    stale: List[str] = []
    if baseline_fingerprints:
        from repro.analysis.baseline import fingerprint_findings

        fingerprinted = fingerprint_findings(project, findings)
        kept = []
        matched: Set[str] = set()
        for finding, print_ in fingerprinted:
            if print_ in baseline_fingerprints:
                matched.add(print_)
                n_baselined += 1
            else:
                kept.append(finding)
        findings = kept
        stale = sorted(baseline_fingerprints - matched)

    findings.sort(key=Finding.sort_key)
    return Report(
        findings=findings,
        n_suppressed=n_suppressed,
        n_baselined=n_baselined,
        stale_baseline=stale,
    )
