"""Forward gen/kill dataflow over :mod:`repro.analysis.cfg` graphs.

A deliberately small fixpoint engine: facts are opaque hashable tokens,
blocks carry a *gen* set (facts born here) and a *kill* set (facts
discharged here), and the analysis propagates the may-union forward until
nothing changes.  That is exactly the shape the ``resource-leak`` rule
needs — a fact is "resource ``x`` acquired at line N is still open" — and
small enough to read in one sitting.

Exceptional edges get the asymmetric treatment that makes leak analysis
honest:

* the source block's **gen never happened** — an exception inside
  ``f = open(p)`` means ``f`` was never bound;
* the source block's **kill is honoured** — ``f.close()`` raising still
  counts as a release attempt (whether the OS freed the handle is beyond
  static analysis, and treating a failed close as a leak would force
  every ``finally`` close into its own nested try).

So a ``normal`` edge carries ``(in - kill) | gen`` and an ``exception`` /
``raise`` edge carries ``in - kill``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Mapping, Set

from repro.analysis.cfg import CFG, EXCEPTIONAL_KINDS

__all__ = ["FixpointResult", "run_forward"]

Fact = Hashable


@dataclass
class FixpointResult:
    """Per-block fact sets at the fixpoint."""

    in_states: Dict[int, FrozenSet[Fact]]
    out_states: Dict[int, FrozenSet[Fact]]

    def at_entry_of(self, block_id: int) -> FrozenSet[Fact]:
        return self.in_states.get(block_id, frozenset())


def run_forward(
    cfg: CFG,
    gen: Mapping[int, Set[Fact]],
    kill: Mapping[int, Set[Fact]],
    entry_state: FrozenSet[Fact] = frozenset(),
) -> FixpointResult:
    """Propagate ``gen``/``kill`` facts forward to a fixpoint.

    ``gen`` and ``kill`` map block ids to fact sets; blocks absent from
    either map contribute nothing.  The join is set union (may-analysis).
    Termination: states only grow and the fact universe is finite.
    """
    empty: Set[Fact] = set()
    in_states: Dict[int, Set[Fact]] = {block_id: set() for block_id in cfg.blocks}
    in_states[cfg.entry] = set(entry_state)

    def out_of(block_id: int, exceptional: bool) -> Set[Fact]:
        state = in_states[block_id] - set(kill.get(block_id, empty))
        if not exceptional:
            state |= set(gen.get(block_id, empty))
        return state

    worklist = set(cfg.blocks)
    while worklist:
        block_id = worklist.pop()
        for dst, edge_kind in cfg.successors(block_id):
            flowed = out_of(block_id, edge_kind in EXCEPTIONAL_KINDS)
            if not flowed <= in_states[dst]:
                in_states[dst] |= flowed
                worklist.add(dst)

    return FixpointResult(
        in_states={bid: frozenset(state) for bid, state in in_states.items()},
        out_states={bid: frozenset(out_of(bid, False)) for bid in cfg.blocks},
    )
