"""Baseline (grandfathered-findings) support for ``repro.analysis``.

A baseline is a checked-in JSON file of *fingerprints* of findings that
existed when a rule was introduced.  CI fails only on findings that are not
in the baseline, so a new rule can land with its historical debt recorded
instead of blocking every PR until the debt is paid down.

Fingerprints are line-number independent: they hash the rule id, the file
path, the *text* of the offending line (whitespace-normalised), and an
occurrence index (disambiguating identical lines in one file).  Re-ordering
or shifting code therefore does not invalidate the baseline, while editing
the offending line does — which is exactly when the finding deserves a fresh
look.

Workflow::

    python -m repro.analysis                    # compare against baseline
    python -m repro.analysis --update-baseline  # re-record current findings
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, Project

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "default_baseline_path",
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
]

BASELINE_SCHEMA_VERSION = 1


def default_baseline_path() -> Path:
    """The checked-in baseline shipped next to this module."""
    return Path(__file__).resolve().parent / "baseline.json"


def _fingerprint(rule: str, path: str, line_text: str, index: int) -> str:
    normalized = " ".join(line_text.split())
    digest = hashlib.sha256(
        f"{rule}\x00{path}\x00{normalized}\x00{index}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


def fingerprint_findings(
    project: Project, findings: Sequence[Finding]
) -> List[Tuple[Finding, str]]:
    """Pair every finding with its stable fingerprint."""
    counters: Dict[Tuple[str, str, str], int] = {}
    result: List[Tuple[Finding, str]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        info = project.module(finding.path)
        line_text = info.line_text(finding.line) if info is not None else ""
        normalized = " ".join(line_text.split())
        key = (finding.rule, finding.path, normalized)
        index = counters.get(key, 0)
        counters[key] = index + 1
        result.append((finding, _fingerprint(finding.rule, finding.path, line_text, index)))
    return result


def load_baseline(path: Path) -> Set[str]:
    """Fingerprint set from a baseline file; empty when the file is absent."""
    if not path.exists():
        return set()
    document = json.loads(path.read_text(encoding="utf-8"))
    version = document.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline schema version {version!r} is not supported "
            f"(expected {BASELINE_SCHEMA_VERSION}); regenerate with --update-baseline"
        )
    return {str(entry["fingerprint"]) for entry in document.get("entries", [])}


def write_baseline(
    path: Path,
    project: Project,
    findings: Sequence[Finding],
    note: Optional[str] = None,
) -> int:
    """Record ``findings`` as the new baseline; returns the entry count.

    Entries keep the human-readable context (rule, path, offending line) next
    to the fingerprint so baseline diffs review like code.
    """
    entries = []
    for finding, print_ in fingerprint_findings(project, findings):
        info = project.module(finding.path)
        line_text = info.line_text(finding.line).strip() if info is not None else ""
        entries.append(
            {
                "fingerprint": print_,
                "rule": finding.rule,
                "path": finding.path,
                "text": line_text,
                "message": finding.message,
            }
        )
    document = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "note": note
        or "Grandfathered findings; shrink this file, never grow it silently.",
        "entries": entries,
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
