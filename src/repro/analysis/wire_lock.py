"""Wire-protocol lock for the serving dispatch (``wire-protocol`` check).

``docs/serving.md`` documents the JSON-lines protocol; external producers
and consumers are written against it.  The ROADMAP's planned length-prefixed
binary wire path will rewrite ``server.py``'s dispatch wholesale — and a
rewrite is exactly when an op silently loses a response key.  This module
makes the protocol *diffable*: it statically extracts the op catalogue from
``ServingServer._dispatch`` — op names, the request keys each handler reads,
the response keys each handler returns — and commits it as
``wire_protocol.lock.json`` next to the analysis package's other locks.

Every lint run re-extracts the catalogue from the scanned AST (no imports —
the extraction is pure ``ast``) and diffs it against the committed lock;
any drift fails the run with a ``wire-protocol`` finding until the change
is sanctioned with ``python -m repro.analysis --update-wire-lock``.

Extraction model
----------------

* An *op* is an ``op == "<name>"`` equality test in ``_dispatch``.
* Its handler scope is the branch body, plus any same-module function or
  method the branch passes the ``request`` object to (``self._op_observe``,
  ``_identity``), followed transitively.
* Request keys are ``request.get("k")`` / ``request["k"]`` reads inside the
  scope; response keys are the string keys of dict literals returned from
  it.  A ``**``-splat in a returned dict records the sentinel ``"*"`` —
  the op's full response shape is dynamic, and narrowing it later is a
  lock-visible change.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.analysis.engine import Finding, ModuleInfo, Project

__all__ = [
    "WIRE_LOCK_VERSION",
    "RULE_WIRE_PROTOCOL",
    "default_wire_lock_path",
    "generate_wire_lock",
    "load_wire_lock",
    "write_wire_lock",
    "diff_wire_lock",
    "wire_findings",
]

WIRE_LOCK_VERSION = 1

#: Pseudo-rule id the findings carry (engine-level, not suppressible — the
#: sanctioned way to change the protocol is ``--update-wire-lock``).
RULE_WIRE_PROTOCOL = "wire-protocol"

#: Sentinel response key recording a ``**``-splat (dynamic response shape).
DYNAMIC_KEYS = "*"

_UPDATE_HINT = "run `python -m repro.analysis --update-wire-lock` to sanction it"

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def default_wire_lock_path() -> Path:
    """The checked-in manifest shipped next to this module."""
    return Path(__file__).resolve().parent / "wire_protocol.lock.json"


def find_server_module(project: Project) -> Optional[ModuleInfo]:
    """The scanned module holding the serving dispatch, if any."""
    for info in project.modules:
        if info.tree is None:
            continue
        if info.rel_path == "server.py" or info.rel_path.endswith("/server.py"):
            if _find_dispatch(info.tree) is not None:
                return info
    return None


def _find_dispatch(tree: ast.Module) -> Optional[_FuncNode]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "_dispatch":
                return node
    return None


def _module_functions(tree: ast.Module) -> Dict[str, _FuncNode]:
    """Module functions and methods by bare name (for scope-following)."""
    functions: Dict[str, _FuncNode] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.setdefault(item.name, item)
    return functions


def _op_name(test: ast.expr) -> Optional[str]:
    """The string of an ``op == "<name>"`` comparison, else ``None``."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    if not isinstance(test.ops[0], ast.Eq):
        return None
    sides = [test.left, test.comparators[0]]
    name: Optional[str] = None
    has_op = False
    for side in sides:
        if isinstance(side, ast.Name) and side.id == "op":
            has_op = True
        elif isinstance(side, ast.Constant) and isinstance(side.value, str):
            name = side.value
    return name if has_op else None


def _request_param(func: _FuncNode) -> Optional[str]:
    """The parameter name the request dict arrives under (if any)."""
    names = [arg.arg for arg in func.args.args if arg.arg not in ("self", "cls")]
    return names[0] if names else None


def _scope_stmts(
    branch: List[ast.stmt],
    request_name: str,
    functions: Dict[str, _FuncNode],
) -> List[Tuple[List[ast.stmt], str]]:
    """The handler branch plus every function it hands the request to.

    Returns ``(statements, request_variable_name)`` pairs — the request
    object may travel under a different parameter name in a callee.
    """
    scopes: List[Tuple[List[ast.stmt], str]] = [(branch, request_name)]
    seen: Set[str] = set()
    index = 0
    while index < len(scopes):
        stmts, req = scopes[index]
        index += 1
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                passes_request = any(
                    isinstance(arg, ast.Name) and arg.id == req for arg in node.args
                )
                if not passes_request:
                    continue
                callee: Optional[str] = None
                if isinstance(node.func, ast.Name):
                    callee = node.func.id
                elif isinstance(node.func, ast.Attribute) and isinstance(
                    node.func.value, ast.Name
                ):
                    if node.func.value.id in ("self", "cls"):
                        callee = node.func.attr
                if callee is None or callee in seen or callee not in functions:
                    continue
                seen.add(callee)
                target = functions[callee]
                param = _request_param(target)
                if param is not None:
                    scopes.append((target.body, param))
    return scopes


def _extract_op(
    branch: List[ast.stmt],
    request_name: str,
    functions: Dict[str, _FuncNode],
) -> Dict[str, List[str]]:
    request_keys: Set[str] = set()
    response_keys: Set[str] = set()
    for stmts, req in _scope_stmts(branch, request_name, functions):
        for stmt in stmts:
            for node in ast.walk(stmt):
                # request.get("k") / request["k"]
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == req
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    request_keys.add(node.args[0].value)
                elif (
                    isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == req
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)
                ):
                    request_keys.add(node.slice.value)
                elif isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Dict
                ):
                    for key in node.value.keys:
                        if key is None:
                            response_keys.add(DYNAMIC_KEYS)
                        elif isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            response_keys.add(key.value)
    return {
        "request_keys": sorted(request_keys),
        "response_keys": sorted(response_keys),
    }


def generate_wire_lock(project: Project) -> Dict[str, Any]:
    """Extract the live op catalogue from the scanned serving dispatch."""
    info = find_server_module(project)
    if info is None:
        raise ValueError(
            "no serving dispatch found: the scanned tree holds no server.py "
            "with a _dispatch method"
        )
    assert info.tree is not None
    dispatch = _find_dispatch(info.tree)
    assert dispatch is not None
    functions = _module_functions(info.tree)
    request_name = _request_param(dispatch) or "request"

    ops: Dict[str, Dict[str, List[str]]] = {}
    for node in ast.walk(dispatch):
        if not isinstance(node, ast.If):
            continue
        name = _op_name(node.test)
        if name is not None and name not in ops:
            ops[name] = _extract_op(node.body, request_name, functions)
    return {
        "wire_lock_version": WIRE_LOCK_VERSION,
        "source": info.rel_path,
        "ops": ops,
    }


def load_wire_lock(path: Path) -> Dict[str, Any]:
    document = json.loads(path.read_text(encoding="utf-8"))
    version = document.get("wire_lock_version")
    if version != WIRE_LOCK_VERSION:
        raise ValueError(
            f"wire lock version {version!r} is not supported "
            f"(expected {WIRE_LOCK_VERSION}); regenerate with --update-wire-lock"
        )
    return document


def write_wire_lock(path: Path, project: Project) -> Dict[str, Any]:
    document = generate_wire_lock(project)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return document


def diff_wire_lock(
    lock: Dict[str, Any], current: Dict[str, Any]
) -> List[Tuple[str, str]]:
    """Compare the committed lock against the live dispatch extraction.

    Returns ``(op_name, message)`` pairs; op name ``"*"`` marks
    manifest-level problems.  An empty list means the wire contract holds.
    """
    problems: List[Tuple[str, str]] = []
    locked = dict(lock.get("ops", {}))
    live = dict(current["ops"])
    for name in sorted(set(locked) - set(live)):
        problems.append(
            (
                name,
                f"op {name!r} is in the wire lock but no longer dispatched — "
                "clients speaking the documented protocol would get "
                f"'unknown op'; removing an op is a breaking change: {_UPDATE_HINT}",
            )
        )
    for name in sorted(set(live) - set(locked)):
        problems.append(
            (
                name,
                f"op {name!r} is dispatched but not in the wire lock; "
                f"new wire surface must be recorded: {_UPDATE_HINT}",
            )
        )
    for name in sorted(set(live) & set(locked)):
        for section in ("request_keys", "response_keys"):
            want = sorted(locked[name].get(section, []))
            have = sorted(live[name].get(section, []))
            if want == have:
                continue
            added = sorted(set(have) - set(want))
            removed = sorted(set(want) - set(have))
            detail = []
            if added:
                detail.append("added " + ", ".join(added))
            if removed:
                detail.append("removed " + ", ".join(removed))
            problems.append(
                (
                    name,
                    f"op {name!r} changed its {section.replace('_', ' ')} "
                    f"({'; '.join(detail)}) — deployed clients parse the old "
                    f"shape; {_UPDATE_HINT}",
                )
            )
    return problems


def wire_findings(project: Project, lock_path: Path) -> List[Finding]:
    """The ``wire-protocol`` findings for one lint run.

    Quietly skips trees without a serving dispatch (fixture runs, partial
    lints) — the repo-clean meta-test scans the full package, which is
    where absence would mean deletion.
    """
    info = find_server_module(project)
    if info is None:
        return []
    anchor = _find_dispatch(info.tree) if info.tree is not None else None
    line = anchor.lineno if anchor is not None else 1
    try:
        lock = load_wire_lock(lock_path)
    except FileNotFoundError:
        return [
            Finding(
                rule=RULE_WIRE_PROTOCOL,
                path=info.rel_path,
                line=line,
                col=0,
                message=(
                    f"wire lock {lock_path} does not exist; {_UPDATE_HINT}"
                ),
            )
        ]
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        return [
            Finding(
                rule=RULE_WIRE_PROTOCOL,
                path=info.rel_path,
                line=line,
                col=0,
                message=f"wire lock {lock_path} is unreadable ({exc}); {_UPDATE_HINT}",
            )
        ]
    current = generate_wire_lock(project)
    return [
        Finding(
            rule=RULE_WIRE_PROTOCOL,
            path=info.rel_path,
            line=line,
            col=0,
            message=message,
        )
        for _op, message in diff_wire_lock(lock, current)
    ]
