"""``python -m repro.analysis`` — run the invariant linter.

Exit codes (what CI gates on):

* ``0`` — clean: no findings beyond the committed baseline.
* ``1`` — findings: at least one non-baselined violation (listed on stdout).
* ``2`` — usage or internal error (bad rule name, unreadable baseline).

Common invocations::

    python -m repro.analysis                          # lint src/repro
    python -m repro.analysis --format json            # machine-readable (CI)
    python -m repro.analysis --rules determinism      # one rule only
    python -m repro.analysis --update-baseline        # re-record debt
    python -m repro.analysis --update-lock            # commit a new snapshot
                                                      # schema layout
    python -m repro.analysis --update-wire-lock       # commit a new wire-
                                                      # protocol op catalogue
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis import schema_lock, wire_lock
from repro.analysis.engine import ENGINE_RULE_IDS, Report, run_rules, scan_paths
from repro.analysis.rules import all_rules, rules_by_id, select_rules


def default_target() -> Path:
    """The ``repro`` package source tree this module ships inside."""
    return Path(__file__).resolve().parents[1]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter (determinism, durability, "
        "snapshot-contract, broad-except, deprecated-symbol, async-blocking, "
        "resource-leak, fork-safety, plus the wire-protocol lock check).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (json is one object with findings + summary)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file of grandfathered findings "
        "(default: the committed src/repro/analysis/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--lock",
        type=Path,
        default=None,
        help="snapshot schema-lock manifest for the snapshot-contract rule "
        "(default: the committed src/repro/analysis/snapshot_schema.lock.json)",
    )
    parser.add_argument(
        "--no-lock",
        action="store_true",
        help="skip the dynamic schema-lock check (fixture/offline runs)",
    )
    parser.add_argument(
        "--update-lock",
        action="store_true",
        help="regenerate the schema-lock manifest from the live detector "
        "registry and exit (the sanctioned flow after a "
        "SNAPSHOT_SCHEMA_VERSION bump)",
    )
    parser.add_argument(
        "--wire-lock",
        type=Path,
        default=None,
        help="wire-protocol lock manifest diffed against the serving "
        "dispatch (default: the committed "
        "src/repro/analysis/wire_protocol.lock.json)",
    )
    parser.add_argument(
        "--no-wire-lock",
        action="store_true",
        help="skip the wire-protocol lock check (fixture/offline runs)",
    )
    parser.add_argument(
        "--update-wire-lock",
        action="store_true",
        help="re-extract the op catalogue from the scanned server dispatch, "
        "rewrite the wire lock, and exit (the sanctioned flow after an "
        "intentional protocol change)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_human(report: Report, stream) -> None:
    for finding in report.findings:
        stream.write(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.message} [{finding.rule}]\n"
        )
    summary = (
        f"{len(report.findings)} finding(s), "
        f"{report.n_suppressed} suppressed, "
        f"{report.n_baselined} baselined"
    )
    if report.stale_baseline:
        summary += (
            f", {len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} "
            "(re-run --update-baseline to prune)"
        )
    stream.write(summary + "\n")


def _print_json(report: Report, stream) -> None:
    stream.write(
        json.dumps(
            {
                "findings": [finding.to_dict() for finding in report.findings],
                "summary": {
                    "n_findings": len(report.findings),
                    "n_suppressed": report.n_suppressed,
                    "n_baselined": report.n_baselined,
                    "stale_baseline": report.stale_baseline,
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:20s} {rule.description}")
        for rule_id in ENGINE_RULE_IDS:
            print(f"{rule_id:20s} (engine) scan/suppression hygiene")
        return 0

    if args.update_lock:
        path = args.lock or schema_lock.default_lock_path()
        document = schema_lock.write_lock(path)
        print(
            f"wrote {path} ({len(document['detectors'])} detectors, "
            f"snapshot schema v{document['snapshot_schema_version']})"
        )
        return 0

    try:
        rules = select_rules(
            [token.strip() for token in args.rules.split(",") if token.strip()]
            if args.rules
            else None
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    paths: List[Path] = [Path(p) for p in args.paths] or [default_target()]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    options = {}
    if not args.no_lock and "snapshot-contract" in rules_by_id() and any(
        rule.id == "snapshot-contract" for rule in rules
    ):
        lock_path = args.lock or schema_lock.default_lock_path()
        options["schema_lock_path"] = str(lock_path)
    if not args.no_wire_lock:
        wire_path = args.wire_lock or wire_lock.default_wire_lock_path()
        options["wire_lock_path"] = str(wire_path)

    project = scan_paths(paths, options)

    if args.update_wire_lock:
        wire_path = args.wire_lock or wire_lock.default_wire_lock_path()
        try:
            document = wire_lock.write_wire_lock(wire_path, project)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {wire_path} ({len(document['ops'])} ops)")
        return 0

    baseline_path = args.baseline or baseline_mod.default_baseline_path()
    fingerprints = None
    if not args.no_baseline and not args.update_baseline:
        try:
            fingerprints = baseline_mod.load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    report = run_rules(project, rules, fingerprints)

    if args.update_baseline:
        count = baseline_mod.write_baseline(baseline_path, project, report.findings)
        print(f"wrote {baseline_path} ({count} grandfathered finding(s))")
        return 0

    stream = sys.stdout
    if args.format == "json":
        _print_json(report, stream)
    else:
        _print_human(report, stream)
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
