"""Snapshot schema-lock manifest for the ``snapshot-contract`` rule.

The serving layer's crash-safety rests on ``state_dict()`` payloads being
*stable*: a checkpoint written yesterday must restore bit-exactly today.
The schema-lock manifest records, per exported detector, the exact set of
persisted keys (constructor ``config`` keys and mutable ``state`` keys) under
the current :data:`repro.core.base.SNAPSHOT_SCHEMA_VERSION`.  The
``snapshot-contract`` rule regenerates this view from the live registry on
every run and diffs it against the committed manifest, so that

* silently adding/removing/renaming a persisted key,
* removing a detector from ``exported_detector_classes()`` (which would also
  silently drop it from every registry-driven test suite), or
* bumping ``SNAPSHOT_SCHEMA_VERSION`` without refreshing the lock

all fail the lint run.  An *intentional* layout change is a two-line diff:
bump the schema version (old checkpoints are refused anyway) and run
``python -m repro.analysis --update-lock`` to commit the new reference.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

__all__ = [
    "LOCK_SCHEMA_VERSION",
    "default_lock_path",
    "generate_lock",
    "load_lock",
    "write_lock",
    "diff_lock",
]

LOCK_SCHEMA_VERSION = 1


def default_lock_path() -> Path:
    """The checked-in manifest shipped next to this module."""
    return Path(__file__).resolve().parent / "snapshot_schema.lock.json"


def generate_lock() -> Dict[str, Any]:
    """Current per-detector persisted-key sets, from the live registry.

    Imports :mod:`repro.detectors` lazily so that the analysis framework
    itself stays importable in environments where numpy is unavailable.
    """
    from repro.core.base import SNAPSHOT_SCHEMA_VERSION
    from repro.detectors import exported_detector_classes

    detectors: Dict[str, Dict[str, List[str]]] = {}
    for cls in exported_detector_classes():
        snapshot = cls().state_dict()
        detectors[cls.__name__] = {
            "config_keys": sorted(snapshot.get("config", {})),
            "state_keys": sorted(snapshot.get("state", {})),
        }
    return {
        "lock_schema_version": LOCK_SCHEMA_VERSION,
        "snapshot_schema_version": SNAPSHOT_SCHEMA_VERSION,
        "detectors": detectors,
    }


def load_lock(path: Path) -> Dict[str, Any]:
    document = json.loads(path.read_text(encoding="utf-8"))
    version = document.get("lock_schema_version")
    if version != LOCK_SCHEMA_VERSION:
        raise ValueError(
            f"lock schema version {version!r} is not supported "
            f"(expected {LOCK_SCHEMA_VERSION}); regenerate with --update-lock"
        )
    return document


def write_lock(path: Path) -> Dict[str, Any]:
    document = generate_lock()
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return document


def diff_lock(lock: Dict[str, Any], current: Dict[str, Any]) -> List[Tuple[str, str]]:
    """Compare a committed lock against the live view.

    Returns ``(detector_name, message)`` pairs; detector name ``"*"`` marks
    manifest-level problems.  An empty list means the contract holds.
    """
    problems: List[Tuple[str, str]] = []
    locked_version = lock.get("snapshot_schema_version")
    live_version = current["snapshot_schema_version"]
    if locked_version != live_version:
        problems.append(
            (
                "*",
                f"SNAPSHOT_SCHEMA_VERSION is {live_version} but the schema lock "
                f"records {locked_version}; run `python -m repro.analysis "
                "--update-lock` to commit the new layout",
            )
        )
        # Key diffs below a version bump are expected — the version bump is
        # the sanctioned escape hatch, and --update-lock resets the reference.
        return problems

    locked = lock.get("detectors", {})
    live = current["detectors"]
    for name in sorted(set(locked) - set(live)):
        problems.append(
            (
                name,
                f"detector {name} is in the schema lock but no longer reachable "
                "from exported_detector_classes(); deleting a detector (or "
                "unregistering it, which silently drops it from every "
                "registry-driven suite) requires updating the lock with "
                "--update-lock",
            )
        )
    for name in sorted(set(live) - set(locked)):
        problems.append(
            (
                name,
                f"detector {name} is not in the schema lock; run "
                "`python -m repro.analysis --update-lock` to record its "
                "persisted keys",
            )
        )
    for name in sorted(set(live) & set(locked)):
        for section in ("config_keys", "state_keys"):
            want = list(locked[name].get(section, []))
            have = current["detectors"][name][section]
            if want == have:
                continue
            added = sorted(set(have) - set(want))
            removed = sorted(set(want) - set(have))
            detail = []
            if added:
                detail.append("added " + ", ".join(added))
            if removed:
                detail.append("removed " + ", ".join(removed))
            problems.append(
                (
                    name,
                    f"{name} changed its persisted {section.replace('_', ' ')} "
                    f"({'; '.join(detail)}) without bumping "
                    "SNAPSHOT_SCHEMA_VERSION — existing checkpoints would "
                    "restore against a different layout; bump the version and "
                    "run --update-lock",
                )
            )
    return problems
