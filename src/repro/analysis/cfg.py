"""Intra-procedural control-flow graphs over stdlib ``ast``.

The per-node matchers in :mod:`repro.analysis.rules` see one AST node at a
time; the serving stack's nastier bugs — a ``SharedMemory`` segment leaked on
an exception path, a pipe connection closed on the happy path only — are
*path* properties.  This module builds the graphs those rules reason over:
one :class:`CFG` per function, one basic block per statement, with explicit
edges for branches, loops, ``try``/``except``/``finally`` routing, ``with``,
and the abrupt exits (``return`` / ``raise`` / ``break`` / ``continue``).

Model
-----

* Every statement is its own block (blocks are cheap at this scale, and
  statement granularity is what exception edges need: *any* statement may
  raise, and the state before that statement is what flows to the handler).
* Three synthetic blocks: ``entry``, ``exit`` (normal returns and implicit
  function end) and ``raise`` (the exceptional exit — an exception escaping
  the function).
* Every statement block gets an ``exception`` edge to the innermost
  enclosing handler chain (or the ``raise`` exit), so analyses see the
  "this line blew up" path.
* ``finally`` bodies are built **once**; every route into them (normal
  completion, caught/uncaught exception, ``break``/``continue``/``return``
  passing through) enters the same blocks, and the finally's exits fan back
  out to each pending continuation.  This merges paths — a sound
  over-approximation for the forward may-analyses built on top
  (:mod:`repro.analysis.dataflow`).
* Nested ``def`` / ``class`` statements are opaque single blocks; their
  bodies get their own CFGs via :func:`function_cfgs`.
* ``match`` statements (Python 3.10+) fan out one edge per case; the
  subject block stays in the fall-through frontier unless a wildcard case
  exists.

Edge kinds: ``normal``, ``exception`` (implicit may-raise), ``raise``
(explicit raise statements), ``return``, ``break``, ``continue``, ``back``
(loop back-edge).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "Block",
    "CFG",
    "EXCEPTIONAL_KINDS",
    "build_cfg",
    "function_cfgs",
]

#: Edge kinds that model an exception in flight.  Dataflow treats these
#: specially: the source block's *gen* never happened (the statement did not
#: complete), but its *kill* is honoured (a release attempt counts).
EXCEPTIONAL_KINDS = frozenset({"exception", "raise"})

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# ``ast.Match`` only exists on Python 3.10+; the builder degrades to "no
# match statements can appear" on 3.9, where the syntax does not parse.
_MATCH = getattr(ast, "Match", None)
_MATCH_AS = getattr(ast, "MatchAs", None)


@dataclass
class Block:
    """One CFG node: a single statement, or a synthetic entry/exit."""

    id: int
    label: str
    node: Optional[ast.AST] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.id}, {self.label!r})"


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, func: Optional[_FuncNode] = None) -> None:
        self.func = func
        self.blocks: Dict[int, Block] = {}
        self.edges: Set[Tuple[int, int, str]] = set()
        self.entry: int = -1
        self.exit: int = -1
        self.raise_exit: int = -1
        self._by_node: Dict[int, int] = {}

    # ------------------------------------------------------------- queries

    def successors(self, block_id: int) -> Iterator[Tuple[int, str]]:
        for src, dst, kind in self.edges:
            if src == block_id:
                yield dst, kind

    def predecessors(self, block_id: int) -> Iterator[Tuple[int, str]]:
        for src, dst, kind in self.edges:
            if dst == block_id:
                yield src, kind

    def block_of(self, node: ast.AST) -> Optional[Block]:
        """The block holding ``node`` (by identity), if any."""
        block_id = self._by_node.get(id(node))
        return self.blocks[block_id] if block_id is not None else None

    def labeled_edges(self) -> Set[Tuple[str, str, str]]:
        """``{(src_label, dst_label, kind)}`` — what the tests assert on."""
        return {
            (self.blocks[src].label, self.blocks[dst].label, kind)
            for src, dst, kind in self.edges
        }

    def statement_blocks(self) -> Iterator[Block]:
        """Every non-synthetic block, in id (construction) order."""
        for block_id in sorted(self.blocks):
            block = self.blocks[block_id]
            if block.node is not None:
                yield block


# ---------------------------------------------------------------- frames
#
# The builder threads a stack of frames describing what an abrupt exit from
# the current statement must route through: loops intercept break/continue,
# try bodies intercept exceptions, finally bodies intercept everything.


@dataclass
class _LoopFrame:
    header: int
    breaks: List[Tuple[int, str]] = field(default_factory=list)


@dataclass
class _TryFrame:
    handler_entries: List[int]
    catches_all: bool


@dataclass
class _FinallyFrame:
    incoming: List[Tuple[int, str]] = field(default_factory=list)
    continuations: Set[str] = field(default_factory=set)


_Frame = Union[_LoopFrame, _TryFrame, _FinallyFrame]
_Frontier = List[Tuple[int, str]]


class _Builder:
    def __init__(self, func: Optional[_FuncNode]) -> None:
        self.cfg = CFG(func)
        self._next_id = 0
        self.cfg.entry = self._synthetic("entry")
        self.cfg.exit = self._synthetic("exit")
        self.cfg.raise_exit = self._synthetic("raise")

    # ----------------------------------------------------------- plumbing

    def _synthetic(self, label: str) -> int:
        block_id = self._next_id
        self._next_id += 1
        self.cfg.blocks[block_id] = Block(block_id, label)
        return block_id

    def _block(self, node: ast.AST, label: Optional[str] = None) -> int:
        block_id = self._next_id
        self._next_id += 1
        if label is None:
            label = f"{type(node).__name__}@{getattr(node, 'lineno', 0)}"
        self.cfg.blocks[block_id] = Block(block_id, label, node)
        self.cfg._by_node[id(node)] = block_id
        return block_id

    def _edge(self, src: int, dst: int, kind: str) -> None:
        self.cfg.edges.add((src, dst, kind))

    def _connect(
        self, pairs: Sequence[Tuple[int, str]], dst: int, kind: Optional[str] = None
    ) -> None:
        for src, pair_kind in pairs:
            self._edge(src, dst, kind if kind is not None else pair_kind)

    def _route(self, blocks: Sequence[int], kind: str, frames: List[_Frame]) -> None:
        """Send an abrupt exit through the enclosing frames to its target."""
        exceptional = kind in EXCEPTIONAL_KINDS
        for frame in reversed(frames):
            if isinstance(frame, _FinallyFrame):
                frame.incoming.extend((block, kind) for block in blocks)
                # Exceptions re-dispatch as `raise` beyond the finally.
                frame.continuations.add("raise" if exceptional else kind)
                return
            if isinstance(frame, _LoopFrame) and kind in ("break", "continue"):
                if kind == "continue":
                    for block in blocks:
                        self._edge(block, frame.header, "continue")
                else:
                    frame.breaks.extend((block, "break") for block in blocks)
                return
            if isinstance(frame, _TryFrame) and exceptional:
                for block in blocks:
                    for handler in frame.handler_entries:
                        self._edge(block, handler, kind)
                if frame.catches_all:
                    return
                # An unmatched exception keeps propagating outward.
        if exceptional:
            for block in blocks:
                self._edge(block, self.cfg.raise_exit, kind)
        elif kind == "return":
            for block in blocks:
                self._edge(block, self.cfg.exit, "return")
        # break/continue outside a loop: dead syntax, drop silently.

    def _may_raise(self, block: int, frames: List[_Frame]) -> None:
        self._route([block], "exception", frames)

    # ------------------------------------------------------------ statements

    def process(
        self, stmts: Sequence[ast.stmt], preds: _Frontier, frames: List[_Frame]
    ) -> _Frontier:
        """Build blocks for ``stmts``; return the fall-through frontier."""
        for stmt in stmts:
            preds = self._statement(stmt, preds, frames)
        return preds

    def _statement(
        self, stmt: ast.stmt, preds: _Frontier, frames: List[_Frame]
    ) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._stmt_if(stmt, preds, frames)
        if isinstance(stmt, (ast.While,)):
            return self._stmt_while(stmt, preds, frames)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._stmt_for(stmt, preds, frames)
        if isinstance(stmt, ast.Try):
            return self._stmt_try(stmt, preds, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._stmt_with(stmt, preds, frames)
        if _MATCH is not None and isinstance(stmt, _MATCH):
            return self._stmt_match(stmt, preds, frames)
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            return self._stmt_abrupt(stmt, preds, frames)
        # Simple statement (incl. nested def/class, which stay opaque).
        block = self._block(stmt)
        self._connect(preds, block)
        self._may_raise(block, frames)
        return [(block, "normal")]

    def _stmt_abrupt(
        self, stmt: ast.stmt, preds: _Frontier, frames: List[_Frame]
    ) -> _Frontier:
        block = self._block(stmt)
        self._connect(preds, block)
        if isinstance(stmt, ast.Return):
            self._may_raise(block, frames)  # the returned expression may raise
            self._route([block], "return", frames)
        elif isinstance(stmt, ast.Raise):
            self._route([block], "raise", frames)
        elif isinstance(stmt, ast.Break):
            self._route([block], "break", frames)
        else:
            self._route([block], "continue", frames)
        return []

    def _stmt_if(
        self, stmt: ast.If, preds: _Frontier, frames: List[_Frame]
    ) -> _Frontier:
        header = self._block(stmt)
        self._connect(preds, header)
        self._may_raise(header, frames)
        body_out = self.process(stmt.body, [(header, "normal")], frames)
        if stmt.orelse:
            else_out = self.process(stmt.orelse, [(header, "normal")], frames)
        else:
            else_out = [(header, "normal")]
        return body_out + else_out

    def _stmt_while(
        self, stmt: ast.While, preds: _Frontier, frames: List[_Frame]
    ) -> _Frontier:
        header = self._block(stmt)
        self._connect(preds, header)
        self._may_raise(header, frames)
        loop = _LoopFrame(header)
        body_out = self.process(stmt.body, [(header, "normal")], frames + [loop])
        self._connect(body_out, header, kind="back")
        if stmt.orelse:
            frontier = self.process(stmt.orelse, [(header, "normal")], frames)
        else:
            frontier = [(header, "normal")]
        return frontier + loop.breaks

    def _stmt_for(
        self, stmt: Union[ast.For, ast.AsyncFor], preds: _Frontier, frames: List[_Frame]
    ) -> _Frontier:
        header = self._block(stmt)
        self._connect(preds, header)
        self._may_raise(header, frames)
        loop = _LoopFrame(header)
        body_out = self.process(stmt.body, [(header, "normal")], frames + [loop])
        self._connect(body_out, header, kind="back")
        if stmt.orelse:
            # The else body runs on normal exhaustion, never after a break.
            frontier = self.process(stmt.orelse, [(header, "normal")], frames)
        else:
            frontier = [(header, "normal")]
        return frontier + loop.breaks

    def _stmt_with(
        self,
        stmt: Union[ast.With, ast.AsyncWith],
        preds: _Frontier,
        frames: List[_Frame],
    ) -> _Frontier:
        header = self._block(stmt)
        self._connect(preds, header)
        self._may_raise(header, frames)
        return self.process(stmt.body, [(header, "normal")], frames)

    def _stmt_try(
        self, stmt: ast.Try, preds: _Frontier, frames: List[_Frame]
    ) -> _Frontier:
        fin: Optional[_FinallyFrame] = _FinallyFrame() if stmt.finalbody else None
        frames_fin = frames + [fin] if fin is not None else frames

        handler_entries = [
            self._block(handler, label=f"except@{handler.lineno}")
            for handler in stmt.handlers
        ]
        # `except Exception` counts as catching everything: the escapes it
        # misses (KeyboardInterrupt, SystemExit) tear the process down, and
        # modelling them would force `except BaseException` on every
        # cleanup-and-reraise site for no operational gain.
        catches_all = any(
            handler.type is None
            or (
                isinstance(handler.type, ast.Name)
                and handler.type.id in ("BaseException", "Exception")
            )
            for handler in stmt.handlers
        )
        try_frame = _TryFrame(handler_entries, catches_all)

        body_out = self.process(stmt.body, preds, frames_fin + [try_frame])
        if stmt.orelse:
            body_out = self.process(stmt.orelse, body_out, frames_fin)

        handler_out: _Frontier = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_out += self.process(handler.body, [(entry, "normal")], frames_fin)

        normal_out = body_out + handler_out
        if fin is None:
            return normal_out

        fin.incoming.extend(normal_out)
        if normal_out:
            fin.continuations.add("normal")
        fin_out = self.process(stmt.finalbody, fin.incoming, frames)
        frontier: _Frontier = []
        fin_blocks = [block for block, _ in fin_out]
        for continuation in sorted(fin.continuations):
            if continuation == "normal":
                frontier += fin_out
            else:
                self._route(fin_blocks, continuation, frames)
        return frontier

    def _stmt_match(
        self, stmt: ast.stmt, preds: _Frontier, frames: List[_Frame]
    ) -> _Frontier:
        header = self._block(stmt)
        self._connect(preds, header)
        self._may_raise(header, frames)
        frontier: _Frontier = []
        has_wildcard = False
        for case in stmt.cases:  # type: ignore[attr-defined]
            if (
                _MATCH_AS is not None
                and isinstance(case.pattern, _MATCH_AS)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                has_wildcard = True
            frontier += self.process(case.body, [(header, "normal")], frames)
        if not has_wildcard:
            frontier.append((header, "normal"))
        return frontier


def build_cfg(node: Union[_FuncNode, ast.Module]) -> CFG:
    """Build the CFG of one function (or module) body.

    Nested function and class definitions stay opaque single blocks — call
    :func:`function_cfgs` to get a CFG per function in a module.
    """
    func = node if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) else None
    builder = _Builder(func)
    frontier = builder.process(node.body, [(builder.cfg.entry, "normal")], [])
    builder._connect(frontier, builder.cfg.exit, kind="normal")
    return builder.cfg


def function_cfgs(tree: ast.Module) -> Iterator[Tuple[_FuncNode, CFG]]:
    """``(function_node, cfg)`` for every def/async def in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, build_cfg(node)
