"""``deprecated-symbol`` — internal code may not use deprecated symbols.

A symbol is deprecated when its docstring contains a ``.. deprecated::``
directive (the convention :func:`repro.serving.sharded.route_shard` started).
Deprecation is a promise to *external* callers that the symbol keeps working;
internal callers get no such grace — they are what makes the symbol
impossible to ever delete.  The rule collects every deprecated function and
class in the scanned tree, then flags imports and references from any other
module.

Legitimate internal appearances — the compatibility re-export in
``serving/__init__.py`` — carry a suppression with the reason spelled out.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.analysis.engine import Finding, ModuleInfo, Project, Rule

_DIRECTIVE = ".. deprecated::"


def _deprecated_definitions(project: Project) -> Dict[str, str]:
    """``{symbol name: defining rel_path}`` for every deprecated def."""
    deprecated: Dict[str, str] = {}
    for info in project.modules:
        if info.tree is None:
            continue
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            docstring = ast.get_docstring(node)
            if docstring and _DIRECTIVE in docstring:
                deprecated[node.name] = info.rel_path
    return deprecated


class DeprecationRule(Rule):
    id = "deprecated-symbol"
    description = (
        "internal callers may not import or call symbols whose docstring "
        "carries `.. deprecated::`"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        deprecated = _deprecated_definitions(project)
        if not deprecated:
            return
        for info in project.modules:
            if info.tree is None:
                continue
            yield from self._check_module(info, deprecated)

    def _check_module(
        self, info: ModuleInfo, deprecated: Dict[str, str]
    ) -> Iterator[Finding]:
        local = {name for name, path in deprecated.items() if path == info.rel_path}
        seen: Set[Tuple[int, str]] = set()

        def finding(line: int, col: int, name: str, how: str) -> Iterator[Finding]:
            if (line, name) in seen:
                return
            seen.add((line, name))
            yield Finding(
                rule=self.id,
                path=info.rel_path,
                line=line,
                col=col,
                message=(
                    f"{how} deprecated symbol {name!r} "
                    f"(defined in {deprecated[name]}, see its `.. deprecated::` "
                    "note); internal callers must migrate to the replacement"
                ),
            )

        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    name = alias.name
                    if name in deprecated and name not in local:
                        line = getattr(alias, "lineno", node.lineno)
                        col = getattr(alias, "col_offset", node.col_offset)
                        yield from finding(line, col, name, "imports")
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in deprecated and node.id not in local:
                    yield from finding(node.lineno, node.col_offset, node.id, "uses")
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if node.attr in deprecated and node.attr not in local:
                    yield from finding(node.lineno, node.col_offset, node.attr, "uses")
