"""``determinism`` — no unseeded RNG or clock reads on replayable paths.

Bit-exact replay (golden batch-vs-scalar equivalence, checkpoint/restore,
WAL replay, resharding hand-off) requires that detector, core, and stream
code be a pure function of its inputs and its *seeded* RNG state.  A single
``random.random()`` or ``time.time()`` on one of those paths silently breaks
every such suite, usually flakily.

Scope
-----

* Every module under a ``detectors/``, ``core/``, or ``streams/`` package
  is fully scoped: all RNG and all clock reads are banned there.
* Anywhere else, functions named ``update`` / ``update_batch`` /
  ``update_many`` / ``_update_one`` or containing ``replay`` are scoped too
  (they sit on the replay path wherever they live).
* Wall-clock reads (``time.time``, ``datetime.now``-family) are additionally
  banned in *all* scanned code: a wall-clock value that leaks into persisted
  state taints replay from wherever it is read.  Monotonic/benchmark clocks
  (``perf_counter``, ``monotonic``) stay legal outside the scoped paths.

Allowed forms inside the scope: constructing a seeded generator —
``random.Random(seed)`` / ``np.random.default_rng(seed)`` — because the seed
makes the stream reproducible.  Legitimate wall-clock *fields* (serving
timestamps that are metadata, never replayed state) live in
:data:`WALLCLOCK_ALLOWLIST` with a written reason each.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.engine import Finding, ModuleInfo, Project, Rule

#: Path components whose modules are fully scoped.
SCOPED_PACKAGES = frozenset({"detectors", "core", "streams"})

#: Function names that put any function (wherever defined) on the replay path.
SCOPED_FUNCTION_NAMES = frozenset(
    {"update", "update_batch", "update_many", "_update_one"}
)

#: Wall-clock reads banned everywhere (not just in the scope).
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``(rel_path, qualname prefix) -> reason`` — the explicit allowlist for
#: wall-clock reads that are *metadata by contract*.  Every entry must say
#: why replay is unaffected.
WALLCLOCK_ALLOWLIST: Dict[Tuple[str, str], str] = {
    (
        "repro/serving/hub.py",
        "MonitorHub._fire",
    ): (
        "DriftAlert.ts is the wall-clock emission stamp the serving contract "
        "documents (docs/serving.md); WAL replay re-delivers the original "
        "stamp, so no replayed state depends on this read"
    ),
    (
        "repro/serving/wal.py",
        "AlertWal._load_or_create_meta",
    ): (
        "the WAL meta 'created' field is operator-facing provenance written "
        "once at log creation; it is never replayed into detector state"
    ),
    (
        "repro/obs/journal.py",
        "EventJournal.record",
    ): (
        "journal events are operator-facing forensics correlated with logs "
        "and external monitoring ('what happened at 14:03'); they are never "
        "replayed into detector state"
    ),
}


class DeterminismRule(Rule):
    id = "determinism"
    description = (
        "no unseeded RNG or clock reads in detectors/core/streams or on "
        "update/replay paths; wall-clock reads need an allowlist entry"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for info in project.modules:
            if info.tree is None:
                continue
            yield from self._check_module(info)

    # ----------------------------------------------------------- internals

    def _check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        module_scoped = bool(SCOPED_PACKAGES & set(info.parts))
        qualnames = self.qualname_stack(info.tree)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = qualnames.get(id(node), "")
            scoped = module_scoped or self._function_scoped(qualname)
            dotted = self.dotted_name(node.func)
            message = self._diagnose(node, dotted, scoped)
            if message is None:
                continue
            if self._allowlisted(info.rel_path, qualname, dotted):
                continue
            yield Finding(
                rule=self.id,
                path=info.rel_path,
                line=node.lineno,
                col=node.col_offset,
                message=message,
            )

    @staticmethod
    def _function_scoped(qualname: str) -> bool:
        for segment in qualname.split("."):
            if segment in SCOPED_FUNCTION_NAMES or "replay" in segment:
                return True
        return False

    @staticmethod
    def _allowlisted(rel_path: str, qualname: str, dotted: Optional[str]) -> bool:
        if dotted is not None and dotted not in WALLCLOCK_CALLS:
            return False
        for (allow_path, allow_qual), _reason in WALLCLOCK_ALLOWLIST.items():
            if rel_path.endswith(allow_path) and qualname.startswith(allow_qual):
                return True
        return False

    def _diagnose(
        self, node: ast.Call, dotted: Optional[str], scoped: bool
    ) -> Optional[str]:
        """The violation message for this call, or ``None``."""
        if dotted is None:
            return None
        if dotted in WALLCLOCK_CALLS:
            return (
                f"wall-clock read {dotted}() taints replay; persist logical "
                "positions (n_seen/seq) instead, or add a reasoned "
                "WALLCLOCK_ALLOWLIST entry for a metadata-only timestamp"
            )
        if not scoped:
            return None
        head, _, tail = dotted.rpartition(".")
        if dotted.startswith("time.") or dotted.startswith("datetime."):
            return (
                f"clock read {dotted}() on a replayable path; detector and "
                "stream code must be a pure function of its inputs"
            )
        if head in ("random",):
            if tail in ("Random", "SystemRandom"):
                if tail == "SystemRandom" or not (node.args or node.keywords):
                    return (
                        f"unseeded {dotted}() on a replayable path; construct "
                        "random.Random(seed) so the stream is reproducible"
                    )
                return None
            return (
                f"{dotted}() uses the process-global RNG on a replayable "
                "path; use a seeded random.Random(seed) instance"
            )
        if head in ("np.random", "numpy.random"):
            if tail == "default_rng":
                if not (node.args or node.keywords):
                    return (
                        "unseeded np.random.default_rng() on a replayable "
                        "path; pass an explicit seed"
                    )
                return None
            return (
                f"{dotted}() uses numpy's legacy global RNG on a replayable "
                "path; use np.random.default_rng(seed)"
            )
        if dotted == "default_rng" and not (node.args or node.keywords):
            return (
                "unseeded default_rng() on a replayable path; pass an "
                "explicit seed"
            )
        return None
