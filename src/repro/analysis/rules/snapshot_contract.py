"""``snapshot-contract`` — detectors must checkpoint, register, and lock.

Three layers of the same contract:

1. **Pair rule (AST).**  A concrete :class:`DriftDetector` subclass that
   overrides ``_state_dict`` must override ``_load_state`` too (and vice
   versa) — one half alone means snapshots that silently restore to a fresh
   detector, which the round-trip suite only catches *if the detector is
   registered*.
2. **Registry rule (AST).**  Every concrete subclass under a ``detectors/``
   or ``core/`` package must appear in the tuple returned by
   ``exported_detector_classes()``.  That registry drives the golden
   batch-vs-scalar equivalence suite, the snapshot round-trip suite, the
   reset contract, and pickling — an unregistered detector is an untested
   detector.
3. **Schema lock (dynamic).**  The committed manifest
   (``snapshot_schema.lock.json``) records every registered detector's
   persisted config/state keys under the current
   ``SNAPSHOT_SCHEMA_VERSION``; the live registry is diffed against it, so
   key changes without a version bump — and silent detector removals — fail
   the run.  See :mod:`repro.analysis.schema_lock` for the ``--update-lock``
   flow.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.engine import Finding, ModuleInfo, Project, Rule

_BASE_NAME = "DriftDetector"
_REGISTRY_FUNCTION = "exported_detector_classes"
_REGISTRY_PACKAGES = frozenset({"detectors", "core"})


def _is_detector_subclass(node: ast.ClassDef) -> bool:
    for base in node.bases:
        dotted = Rule.dotted_name(base)
        if dotted is not None and dotted.split(".")[-1] == _BASE_NAME:
            return True
    return False


def _is_abstract(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in stmt.decorator_list:
                dotted = Rule.dotted_name(decorator)
                if dotted is not None and "abstractmethod" in dotted:
                    return True
    return False


def _method_names(node: ast.ClassDef) -> Set[str]:
    return {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _registered_names(project: Project) -> Tuple[Optional[ModuleInfo], Set[str]]:
    """The registry module and the class names its tuple returns."""
    for info in project.modules:
        if info.tree is None:
            continue
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == _REGISTRY_FUNCTION
            ):
                names: Set[str] = set()
                for child in ast.walk(node):
                    if isinstance(child, ast.Return) and isinstance(
                        child.value, (ast.Tuple, ast.List)
                    ):
                        for element in child.value.elts:
                            if isinstance(element, ast.Name):
                                names.add(element.id)
                return info, names
    return None, set()


class SnapshotContractRule(Rule):
    id = "snapshot-contract"
    description = (
        "DriftDetector subclasses define both snapshot halves, appear in "
        "exported_detector_classes(), and match the schema lock"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        registry_module, registered = _registered_names(project)
        class_sites: Dict[str, Tuple[ModuleInfo, int]] = {}

        for info in project.modules:
            if info.tree is None:
                continue
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if node.name == _BASE_NAME or not _is_detector_subclass(node):
                    continue
                class_sites[node.name] = (info, node.lineno)
                if node.name.startswith("_") or _is_abstract(node):
                    continue
                methods = _method_names(node)
                has_state = "_state_dict" in methods
                has_load = "_load_state" in methods
                if has_state != has_load:
                    present, missing = (
                        ("_state_dict", "_load_state")
                        if has_state
                        else ("_load_state", "_state_dict")
                    )
                    yield Finding(
                        rule=self.id,
                        path=info.rel_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{node.name} overrides {present} but not {missing}; "
                            "snapshots will serialize state the restore path "
                            "silently drops (or vice versa) — implement both "
                            "halves together"
                        ),
                    )
                if (
                    registry_module is not None
                    and _REGISTRY_PACKAGES & set(info.parts)
                    and node.name not in registered
                ):
                    yield Finding(
                        rule=self.id,
                        path=info.rel_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{node.name} is not reachable from "
                            f"{_REGISTRY_FUNCTION}() "
                            f"({registry_module.rel_path}); the golden "
                            "equivalence, snapshot round-trip, reset, and "
                            "pickling suites are registry-driven and will "
                            "never cover it — register it"
                        ),
                    )

        yield from self._check_schema_lock(project, registry_module, class_sites)

    # ------------------------------------------------------ schema lock

    def _check_schema_lock(
        self,
        project: Project,
        registry_module: Optional[ModuleInfo],
        class_sites: Dict[str, Tuple[ModuleInfo, int]],
    ) -> Iterator[Finding]:
        configured = project.options.get("schema_lock_path")
        if not configured:
            return
        lock_path = Path(str(configured))
        anchor = registry_module or (project.modules[0] if project.modules else None)
        if anchor is None:
            return

        def anchored(detector: str, message: str) -> Finding:
            info, line = class_sites.get(detector, (anchor, 1))
            return Finding(
                rule=self.id,
                path=info.rel_path,
                line=line,
                col=0,
                message=message,
            )

        from repro.analysis import schema_lock

        if not lock_path.exists():
            yield anchored(
                "*",
                f"schema lock {lock_path} is missing; generate it with "
                "`python -m repro.analysis --update-lock` and commit it",
            )
            return
        try:
            lock = schema_lock.load_lock(lock_path)
            current = schema_lock.generate_lock()
        except Exception as exc:  # repro: allow(broad-except) -- any import/parse failure here must become a lint finding (the CI gate), not a crash of the linter itself
            yield anchored("*", f"schema lock check could not run: {exc}")
            return
        for detector, message in schema_lock.diff_lock(lock, current):
            yield anchored(detector, message)
