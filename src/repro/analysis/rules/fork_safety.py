"""``fork-safety`` — worker entrypoints must not touch inherited state.

``ShardedHub`` fans detectors out to ``multiprocessing`` workers.  On a
``fork`` start method the child inherits the parent's module globals by
*copy*: a module-level RNG keeps the parent's stream position (every worker
draws the same "random" numbers), an inherited ``threading.Lock`` may be
permanently held by a parent thread that does not exist in the child, and
an inherited file handle shares its OS-level offset and buffers with the
parent — concurrent writes interleave or double-flush.

Scope
-----

Worker entrypoints are found statically inside ``serving/`` modules: any
function passed as the ``target=`` of a ``Process(...)`` call, plus any
module-level function named ``*_worker_main``.  The rule walks the
entrypoint and every same-module function it (transitively) calls, and
flags:

* process-global RNG use — ``random.random()``, ``np.random.*`` — or reads
  of a module-level RNG instance; workers must construct their own seeded
  ``random.Random(seed)`` / ``default_rng(seed)``;
* reads of module-level names bound to ``threading`` synchronisation
  primitives;
* reads of module-level names bound to file handles, sockets, or pipe
  connections created at import time.

State a worker must share with its parent travels explicitly through the
entrypoint's *arguments* (the pipe connection ``_shard_worker_main``
receives is exactly that pattern), never through inherited globals.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.engine import Finding, ModuleInfo, Project, Rule

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Call-name last components that create a lock-like primitive.
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event", "Barrier"}
)

#: Call-name last components that create an OS-level handle.
_HANDLE_FACTORIES = frozenset(
    {"open", "socket", "socketpair", "create_connection", "Pipe", "Queue"}
)

#: Call-name last components that create an RNG instance.
_RNG_FACTORIES = frozenset({"Random", "default_rng", "RandomState", "SystemRandom"})

#: Dotted-call prefixes that hit the process-global RNG.
_GLOBAL_RNG_PREFIXES = ("random.", "np.random.", "numpy.random.")


class ForkSafetyRule(Rule):
    id = "fork-safety"
    description = (
        "multiprocessing worker entrypoints must not use inherited "
        "module-level RNG, locks, or parent file handles"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for info in project.modules_under("serving"):
            if info.tree is None:
                continue
            yield from self._check_module(info)

    # ----------------------------------------------------------- internals

    def _check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        tree = info.tree
        functions: Dict[str, _FuncNode] = {
            node.name: node
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        entrypoints = self._entrypoints(tree, functions)
        if not entrypoints:
            return
        risky = self._risky_globals(tree)

        # Transitive same-module call closure from the entrypoints.
        reached: Dict[str, str] = {name: name for name in entrypoints}
        worklist = list(entrypoints)
        while worklist:
            name = worklist.pop()
            for node in _own_nodes(functions[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in functions
                    and node.func.id not in reached
                ):
                    reached[node.func.id] = reached[name]
                    worklist.append(node.func.id)

        for name in sorted(reached):
            entry = reached[name]
            func = functions[name]
            local_names = _bound_names(func)
            for node in _own_nodes(func):
                message = self._diagnose(node, risky, local_names, entry)
                if message is not None:
                    yield Finding(
                        rule=self.id,
                        path=info.rel_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=message,
                    )

    @staticmethod
    def _entrypoints(tree: ast.Module, functions: Dict[str, _FuncNode]) -> Set[str]:
        entrypoints = {
            name for name in functions if name.endswith("_worker_main")
        }
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = Rule.dotted_name(node.func)
            if dotted is None or dotted.rsplit(".", 1)[-1] != "Process":
                continue
            for keyword in node.keywords:
                if keyword.arg != "target":
                    continue
                target = keyword.value
                if isinstance(target, ast.Name) and target.id in functions:
                    entrypoints.add(target.id)
        return entrypoints

    @staticmethod
    def _risky_globals(tree: ast.Module) -> Dict[str, str]:
        """Module-level ``name -> category`` for fork-hostile bindings."""
        risky: Dict[str, str] = {}
        for stmt in tree.body:
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            dotted = Rule.dotted_name(stmt.value.func)
            if dotted is None:
                continue
            tail = dotted.rsplit(".", 1)[-1]
            if tail in _LOCK_FACTORIES:
                category = "lock"
            elif tail in _HANDLE_FACTORIES:
                category = "file/socket handle"
            elif tail in _RNG_FACTORIES:
                category = "RNG"
            else:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    risky[target.id] = category
        return risky

    def _diagnose(
        self,
        node: ast.AST,
        risky: Dict[str, str],
        local_names: Set[str],
        entry: str,
    ) -> Optional[str]:
        if isinstance(node, ast.Call):
            dotted = self.dotted_name(node.func)
            if dotted is not None and dotted.startswith(_GLOBAL_RNG_PREFIXES):
                root = dotted.split(".", 1)[0]
                tail = dotted.rsplit(".", 1)[-1]
                # Constructing a fresh generator inside the worker is the
                # *fix*, not the bug (seeding is the determinism rule's job).
                if tail not in ("Random", "default_rng", "SystemRandom") and (
                    root not in local_names
                ):
                    return (
                        f"{dotted}() uses the process-global RNG inside worker "
                        f"entrypoint {entry}; after fork every worker inherits "
                        "the parent's stream position — construct a seeded "
                        "random.Random(seed)/default_rng(seed) in the worker"
                    )
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            category = risky.get(node.id)
            if category is not None and node.id not in local_names:
                return (
                    f"module-level {category} {node.id!r} used inside worker "
                    f"entrypoint {entry}; fork-inherited "
                    + (
                        "locks may be held by parent threads that do not exist "
                        "in the child"
                        if category == "lock"
                        else "handles share their offset and buffers with the "
                        "parent"
                        if category != "RNG"
                        else "RNG state replays the parent's stream — create "
                        "it inside the worker"
                    )
                    + "; pass shared state through the entrypoint's arguments"
                )
        return None


def _own_nodes(func: _FuncNode) -> Iterator[ast.AST]:
    """Every node in ``func``'s own body, excluding nested def/class bodies."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _bound_names(func: _FuncNode) -> Set[str]:
    """Parameter and locally-assigned names (these shadow module globals)."""
    names: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    for node in _own_nodes(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names
