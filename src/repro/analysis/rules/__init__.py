"""Rule registry for ``repro.analysis``.

Every rule is a stateless :class:`repro.analysis.engine.Rule` subclass
instantiated once here.  To add a rule: create a module in this package,
subclass ``Rule`` with a unique ``id`` and a one-line ``description``,
implement ``check(project)``, add the instance to :data:`ALL_RULES`, add
good/bad fixtures under ``tests/fixtures/analysis/``, and document it in
``docs/static-analysis.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.engine import Rule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.broad_except import BroadExceptRule
from repro.analysis.rules.deprecation import DeprecationRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.durability import DurabilityRule
from repro.analysis.rules.fork_safety import ForkSafetyRule
from repro.analysis.rules.resource_leak import ResourceLeakRule
from repro.analysis.rules.snapshot_contract import SnapshotContractRule

__all__ = ["ALL_RULES", "all_rules", "rules_by_id", "select_rules"]

ALL_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    DurabilityRule(),
    SnapshotContractRule(),
    BroadExceptRule(),
    DeprecationRule(),
    AsyncBlockingRule(),
    ResourceLeakRule(),
    ForkSafetyRule(),
)


def all_rules() -> Tuple[Rule, ...]:
    return ALL_RULES


def rules_by_id() -> Dict[str, Rule]:
    return {rule.id: rule for rule in ALL_RULES}


def select_rules(ids: Optional[Iterable[str]] = None) -> List[Rule]:
    """The rules named by ``ids`` (all of them when ``ids`` is ``None``)."""
    if ids is None:
        return list(ALL_RULES)
    registry = rules_by_id()
    selected: List[Rule] = []
    for rule_id in ids:
        if rule_id not in registry:
            raise KeyError(
                f"unknown rule {rule_id!r}; known rules: "
                + ", ".join(sorted(registry))
            )
        selected.append(registry[rule_id])
    return selected
