"""``resource-leak`` — acquired handles must be released on *every* path.

A ``SharedMemory`` segment that leaks when ``process.start()`` raises stays
mapped until reboot; a pipe connection that survives a reshard abort holds
a file descriptor per retry.  Whether cleanup runs on the happy path is
easy to see in review — whether it runs on the *exception* path between
acquisition and release is not, which is why this rule walks the CFG
(:mod:`repro.analysis.cfg`) instead of matching single nodes.

Model
-----

For every function, acquisitions (``f = open(...)``, ``a, b = Pipe()``,
``shm = SharedMemory(...)``, sockets, executors, temp files) *gen* a fact;
the fact is *killed* by anything that discharges the local obligation:

* a close-family method call — ``.close()``, ``.shutdown()``,
  ``.terminate()``, ``.unlink()``, ``.release()``, ``.detach()``, ``.kill()``;
* ``with``-management (``with x:`` — and ``with open(...) as f`` never
  gens at all);
* escape: returning/yielding the handle, passing it to a call, or storing
  it on an attribute/subscript — ownership left the function, the caller
  or container is responsible now;
* rebinding or ``del``.

The forward may-analysis (:mod:`repro.analysis.dataflow`) then asks whether
any fact is still live at the normal or exceptional exit.  Exception edges
drop the gen (the handle never existed) but honour the kill (a raising
``close()`` still counts as the release attempt), so ``try``/``finally``
and ``with`` are exactly the shapes that come back clean.

Module-level acquisitions are out of scope (process-lifetime handles are a
deliberate pattern); functions are analysed one at a time.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import run_forward
from repro.analysis.engine import Finding, ModuleInfo, Project, Rule

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Last-component call names whose result is a resource needing release.
ACQUIRE_CALLS = frozenset(
    {
        "open",
        "SharedMemory",
        "Pipe",
        "socket",
        "socketpair",
        "create_connection",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "TemporaryFile",
        "NamedTemporaryFile",
        "TemporaryDirectory",
    }
)

#: Method calls that discharge the release obligation.
CLOSE_METHODS = frozenset(
    {"close", "shutdown", "terminate", "unlink", "release", "detach", "kill", "cleanup"}
)

#: ``(variable name, acquisition block id)`` — one fact per acquisition site.
_Fact = Tuple[str, int]


class ResourceLeakRule(Rule):
    id = "resource-leak"
    description = (
        "acquired files/sockets/pipes/shared-memory/executors must be "
        "released on all CFG paths, including exception edges (with or "
        "finally-close)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for info in project.modules:
            if info.tree is None:
                continue
            for node in ast.walk(info.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(info, node)

    # ----------------------------------------------------------- internals

    def _check_function(self, info: ModuleInfo, func: _FuncNode) -> Iterator[Finding]:
        cfg = build_cfg(func)
        gen: Dict[int, Set[_Fact]] = {}
        kill: Dict[int, Set[_Fact]] = {}
        sites: Dict[_Fact, Tuple[ast.AST, str]] = {}
        facts_of_var: Dict[str, Set[_Fact]] = {}

        # Pass 1: acquisition sites (so kills can name every fact of a var).
        for block in cfg.statement_blocks():
            for var, call in _acquisitions(block.node):
                fact: _Fact = (var, block.id)
                gen.setdefault(block.id, set()).add(fact)
                sites[fact] = (call, var)
                facts_of_var.setdefault(var, set()).add(fact)

        if not sites:
            return

        # Pass 2: kills.  Rebinding a var kills its older facts (the gen of
        # the same block re-adds the new one after the kill).
        for block in cfg.statement_blocks():
            killed = _killed_vars(block.node)
            killed |= {var for var, _ in _acquisitions(block.node)}
            for var in killed:
                for fact in facts_of_var.get(var, ()):
                    kill.setdefault(block.id, set()).add(fact)

        result = run_forward(cfg, gen, kill)
        leaks_normal = result.at_entry_of(cfg.exit)
        leaks_raise = result.at_entry_of(cfg.raise_exit)
        for fact in sorted(sites, key=lambda f: sites[f][0].lineno):
            paths = []
            if fact in leaks_normal:
                paths.append("a normal return")
            if fact in leaks_raise:
                paths.append("an exception path")
            if not paths:
                continue
            call, var = sites[fact]
            callee = self.dotted_name(call.func) or "the acquisition"
            yield Finding(
                rule=self.id,
                path=info.rel_path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"resource {var!r} from {callee}() may still be open when "
                    f"{' and '.join(paths)} leaves {func.name}; release it on "
                    "every path — use `with`, or close it in `finally` "
                    "(an except-close must re-raise)"
                ),
            )


def _is_acquire_call(node: ast.AST) -> Optional[ast.Call]:
    if not isinstance(node, ast.Call):
        return None
    name = Rule.dotted_name(node.func)
    if name is not None and name.rsplit(".", 1)[-1] in ACQUIRE_CALLS:
        return node
    return None


def _header_nodes(stmt: ast.AST) -> List[ast.AST]:
    """The parts of a statement its own block evaluates.

    Compound statements carry their bodies as AST children, but the CFG
    gives body statements their own blocks — so gen/kill extraction must
    only look at the header: the test of an ``if``, the iterable of a
    ``for``, the items of a ``with``.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if getattr(ast, "Match", None) is not None and isinstance(
        stmt, ast.Match  # type: ignore[attr-defined]
    ):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []  # nested scopes are analysed separately
    return [stmt]


def _acquisitions(stmt: Optional[ast.AST]) -> Iterator[Tuple[str, ast.Call]]:
    """``(var, call)`` pairs this statement's own block acquires."""
    if stmt is None:
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return  # with-managed resources are released by __exit__
    targets: List[ast.expr] = []
    value: Optional[ast.expr] = None
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets, value = [stmt.target], stmt.value
    if value is None:
        return
    call = _is_acquire_call(value)
    if call is not None:
        for target in targets:
            if isinstance(target, ast.Name):
                yield target.id, call
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        yield element.id, call


def _killed_vars(stmt: Optional[ast.AST]) -> Set[str]:
    """Variables whose release obligation this statement discharges."""
    killed: Set[str] = set()
    if stmt is None:
        return killed
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        # `with x:` / `with closing(x):` manages an already-acquired handle.
        for item in stmt.items:
            for node in ast.walk(item.context_expr):
                if isinstance(node, ast.Name):
                    killed.add(node.id)
        return killed
    if isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                killed.add(target.id)
        return killed

    if isinstance(stmt, ast.If):
        # The guarded-close idiom: `if x is not None: x.close()`.  The test
        # names the variable, so the skip branch is the x-was-never-acquired
        # path — both edges discharge the obligation.
        tested = {
            node.id for node in ast.walk(stmt.test) if isinstance(node, ast.Name)
        }
        for inner in stmt.body:
            call = inner.value if isinstance(inner, ast.Expr) else None
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in CLOSE_METHODS
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in tested
            ):
                killed.add(call.func.value.id)

    escaping: List[ast.AST] = []
    for header in _header_nodes(stmt):
        for node in ast.walk(header):
            if isinstance(node, ast.Call):
                # x.close()-family discharges x; arguments escape.
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in CLOSE_METHODS
                    and isinstance(node.func.value, ast.Name)
                ):
                    killed.add(node.func.value.id)
                escaping.extend(node.args)
                escaping.extend(kw.value for kw in node.keywords)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    escaping.append(node.value)
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        escaping.append(stmt.value)
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if any(not isinstance(target, ast.Name) for target in targets):
            # Stored on an attribute/subscript/tuple: ownership escapes.
            escaping.append(stmt.value)
    for root in escaping:
        for node in ast.walk(root):
            if isinstance(node, ast.Name):
                killed.add(node.id)
    # Rebinding to a non-acquire value also discharges (the old handle is
    # beyond this analysis; refcounting or the new owner deals with it).
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                killed.add(target.id)
    return killed
