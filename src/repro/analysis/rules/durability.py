"""``durability`` — serving-layer writes must be crash-safe.

Every byte the serving layer persists is either (a) a checkpoint/manifest,
which must go through :func:`repro.serving.snapshot.atomic_write_json`
(tmp + fsync + ``os.replace`` + directory fsync), or (b) an append-only
record, which must go through the CRC-framed, torn-tail-tolerant WAL framing
in ``serving/wal.py``.  A raw ``open(path, "w")`` or ``json.dump`` under
``serving/`` is a crash-window: a power cut mid-write leaves a truncated file
that the next startup trusts.

The rule flags, in any module under a ``serving/`` package:

* ``open(...)`` / ``*.open(...)`` with a write/append/create mode,
* ``os.open(...)`` with ``O_WRONLY`` / ``O_RDWR`` / ``O_CREAT`` /
  ``O_APPEND`` / ``O_TRUNC`` flags,
* ``json.dump(...)`` (``json.dumps`` is fine — it produces a string),
* ``tempfile.NamedTemporaryFile`` / ``TemporaryFile`` (writable by default),
* ``*.write_text(...)`` / ``*.write_bytes(...)``.

The two blessed implementations themselves carry suppressions with reasons
(``atomic_write_json`` per-site, ``wal.py`` file-wide) — the framework makes
the primitives *visible*, it does not special-case them.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import Finding, ModuleInfo, Project, Rule

_WRITE_MODE_CHARS = set("wax+")
_OS_OPEN_WRITE_FLAGS = frozenset(
    {"O_WRONLY", "O_RDWR", "O_CREAT", "O_APPEND", "O_TRUNC"}
)
_REMEDY = (
    "; route checkpoints through atomic_write_json() and append-only "
    "records through the WAL framing in serving/wal.py (docs/serving.md, "
    "\"Durability & delivery semantics\")"
)


def _string_value(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_mode(node: ast.Call, position: int) -> Optional[str]:
    """The ``mode`` argument of an ``open``-style call, if statically known."""
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return _string_value(keyword.value)
    if len(node.args) > position:
        return _string_value(node.args[position])
    return None


class DurabilityRule(Rule):
    id = "durability"
    description = (
        "raw file writes under serving/ must route through "
        "atomic_write_json() or the WAL framing"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for info in project.modules:
            if info.tree is None or "serving" not in info.parts:
                continue
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                message = self._diagnose(node)
                if message is None:
                    continue
                yield Finding(
                    rule=self.id,
                    path=info.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message + _REMEDY,
                )

    def _diagnose(self, node: ast.Call) -> Optional[str]:
        dotted = self.dotted_name(node.func)
        func = node.func
        if dotted == "json.dump":
            return "json.dump() writes a file without atomicity or fsync"
        if dotted in ("tempfile.NamedTemporaryFile", "tempfile.TemporaryFile") or (
            isinstance(func, ast.Name)
            and func.id in ("NamedTemporaryFile", "TemporaryFile")
        ):
            return "temporary-file write under serving/"
        if dotted == "os.open":
            for arg in ast.walk(node):
                if isinstance(arg, ast.Attribute) and arg.attr in _OS_OPEN_WRITE_FLAGS:
                    return f"os.open() with {arg.attr} opens for writing"
                if isinstance(arg, ast.Name) and arg.id in _OS_OPEN_WRITE_FLAGS:
                    return f"os.open() with {arg.id} opens for writing"
            return None
        is_open_call = (isinstance(func, ast.Name) and func.id == "open") or (
            isinstance(func, ast.Attribute) and func.attr == "open" and dotted != "os.open"
        )
        if is_open_call:
            # Builtin open(file, mode); Path.open(mode) puts mode first.
            position = 0 if isinstance(func, ast.Attribute) else 1
            mode = _call_mode(node, position)
            if mode is not None and _WRITE_MODE_CHARS & set(mode):
                return f"open(..., {mode!r}) writes without atomicity or fsync"
            return None
        if isinstance(func, ast.Attribute) and func.attr in ("write_text", "write_bytes"):
            return f"{func.attr}() rewrites a file in place without atomicity"
        return None
