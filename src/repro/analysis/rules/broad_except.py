"""``broad-except`` — a swallowed exception must leave a trace in stats.

``except Exception`` has a legitimate place in a serving system: worker
loops, sink fan-outs, and shutdown paths must survive arbitrary failures.
What is *not* legitimate is swallowing the failure invisibly — the operator
of a degraded cluster has to be able to see the degradation in ``stats()`` /
``metrics()`` counters (the ``n_sink_failures`` pattern).

The rule flags every handler for ``Exception`` / ``BaseException`` (or a
bare ``except:``) whose body neither

* re-raises (any ``raise`` statement, including re-wrapping), nor
* increments a counter — an augmented ``+=`` on a name or attribute that
  looks like a stat counter (``n_``-prefixed, e.g. ``self._n_sink_failures``
  or ``self._counters.n_retries``).

Genuinely-defensive handlers that can do neither (best-effort shutdown,
error *forwarding* loops) carry a line suppression with a written reason —
the triage is the point: every broad catch is either observable, re-raised,
or argued for in place.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Finding, Project, Rule

_BROAD_NAMES = frozenset({"Exception", "BaseException"})
_COUNTER_RE = re.compile(r"(^|_)n_")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:  # bare except:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD_NAMES:
            return True
        if isinstance(candidate, ast.Attribute) and candidate.attr in _BROAD_NAMES:
            return True
    return False


def _counter_name(target: ast.AST) -> str:
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return ""


def _surfaces_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            if _COUNTER_RE.search(_counter_name(node.target)):
                return True
    return False


class BroadExceptRule(Rule):
    id = "broad-except"
    description = (
        "except Exception must re-raise, increment a stats counter, or "
        "carry a reasoned suppression"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for info in project.modules:
            if info.tree is None:
                continue
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _is_broad(node) or _surfaces_failure(node):
                    continue
                caught = "bare except" if node.type is None else "except Exception"
                yield Finding(
                    rule=self.id,
                    path=info.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{caught} neither re-raises nor increments a stats "
                        "counter (n_sink_failures-style); the failure is "
                        "invisible to operators — count it, re-raise it, or "
                        "suppress with a written reason"
                    ),
                )
