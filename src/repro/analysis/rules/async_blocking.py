"""``async-blocking`` — no blocking calls reachable from the event loop.

The serving front-end is single-event-loop: one coroutine executing a
blocking call (`os.fsync` of the WAL, a checkpoint write, a pipe ``recv``)
stalls *every* connection, the metrics endpoint, and the signal handlers.
The fix is always the same — offload through ``loop.run_in_executor(...)``
or ``asyncio.to_thread(...)`` — and both offload forms pass the callable as
an *argument* rather than calling it, which is exactly what severs the
call-graph edge this rule walks.

Scope
-----

The rule builds an intra-module call graph (bare-name calls resolve to
module-level functions, ``self.method()`` calls resolve to same-module
methods by name) and marks every function reachable from an ``async def``
as running in event-loop context.  Inside that context it flags:

* dotted calls in :data:`BLOCKING_CALLS` — ``os.fsync``, ``time.sleep``,
  the ``subprocess`` family, blocking socket constructors;
* ``open(...)`` and ``Path.read_text``-style sync file I/O;
* method calls in :data:`BLOCKING_METHODS` — the project's own blocking
  surface: hub ops that hit the WAL or checkpoint files (``ingest``,
  ``observe``, ``checkpoint``, ``replay_wal``, ``reshard``, ...), the
  ``AlertWal`` append family, and pipe ``send``/``recv``.

A call that *must* stay inline (a shutdown path running after the loop's
server has stopped, say) takes a reasoned
``# repro: allow(async-blocking) -- <why>`` suppression.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.engine import Finding, ModuleInfo, Project, Rule

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Dotted call names that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "os.fsync",
        "os.fdatasync",
        "os.sync",
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "select.select",
        "urllib.request.urlopen",
    }
)

#: Bare calls that open blocking file handles.
BLOCKING_BARE_CALLS = frozenset({"open"})

#: Method names whose receiver is (in this codebase) a blocking facade:
#: hub operations that end in WAL fsyncs or checkpoint writes, the
#: ``AlertWal`` append family, pipe connections, and sync file methods.
BLOCKING_METHODS = frozenset(
    {
        # MonitorHub / ShardedHub operations with durability side effects.
        "ingest",
        "observe",
        "observe_with_stats",
        "checkpoint",
        "replay_wal",
        "reshard",
        "alerts_history",
        # AlertWal / durability helpers (repro.serving.wal).
        "commit",
        "append_alert",
        "append_watermark",
        "append_delivered",
        "flush_handle",
        "fsync_directory",
        # multiprocessing.connection.Connection.
        "send",
        "recv",
        "send_bytes",
        "recv_bytes",
        # Sync file/path I/O.
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "fsync",
    }
)

_REMEDY = (
    "; offload with `await loop.run_in_executor(...)` or "
    "`asyncio.to_thread(...)`, or add a reasoned "
    "`# repro: allow(async-blocking)` if the coroutine provably runs "
    "off the serving loop"
)


class AsyncBlockingRule(Rule):
    id = "async-blocking"
    description = (
        "no blocking I/O (fsync, sleep, subprocess, pipe send/recv, WAL "
        "appends, hub ops) reachable from an async def without executor "
        "offload"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for info in project.modules:
            if info.tree is None:
                continue
            yield from self._check_module(info)

    # ----------------------------------------------------------- internals

    def _check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        functions = _module_functions(info.tree)
        if not any(isinstance(node, ast.AsyncFunctionDef) for node, _ in functions.values()):
            return

        # Event-loop context = async defs plus every sync function reachable
        # from one through direct same-module calls.  Offloaded callables
        # never appear as ast.Call nodes, so offloading cuts the edge.
        origins: Dict[str, Tuple[str, ...]] = {}
        worklist: List[str] = []
        for name, (node, _) in functions.items():
            if isinstance(node, ast.AsyncFunctionDef):
                origins[name] = (name,)
                worklist.append(name)
        while worklist:
            name = worklist.pop()
            node, _ = functions[name]
            for callee in _called_names(node, functions):
                if callee not in origins:
                    origins[callee] = origins[name] + (callee,)
                    worklist.append(callee)

        for name in sorted(origins):
            node, qualname = functions[name]
            chain = origins[name]
            for call in _own_calls(node):
                message = self._diagnose(call, chain, qualname)
                if message is not None:
                    yield Finding(
                        rule=self.id,
                        path=info.rel_path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=message,
                    )

    def _diagnose(
        self, call: ast.Call, chain: Tuple[str, ...], qualname: str
    ) -> Optional[str]:
        dotted = self.dotted_name(call.func)
        label = None
        if dotted is not None and (
            dotted in BLOCKING_CALLS or dotted in BLOCKING_BARE_CALLS
        ):
            label = dotted
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in BLOCKING_METHODS
        ):
            label = f"<obj>.{call.func.attr}"
        if label is None:
            return None
        via = "" if len(chain) == 1 else f" via {' -> '.join(chain)}"
        return (
            f"blocking call {label}() runs on the event loop: {qualname} is "
            f"reachable from async def {chain[0]}{via}" + _REMEDY
        )


def _module_functions(
    tree: ast.Module,
) -> Dict[str, Tuple[_FuncNode, str]]:
    """``name -> (node, qualname)`` for module functions and class methods.

    Methods are keyed by bare name so that ``self.method()`` resolves; when
    a module-level function and a method share a name, the module-level one
    wins (bare-name calls can only mean it).
    """
    functions: Dict[str, Tuple[_FuncNode, str]] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.setdefault(
                        item.name, (item, f"{node.name}.{item.name}")
                    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = (node, node.name)
    return functions


def _own_calls(func: _FuncNode) -> Iterator[ast.Call]:
    """Call nodes in ``func``'s own body, excluding nested def/class bodies."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _called_names(
    func: _FuncNode, functions: Dict[str, Tuple[_FuncNode, str]]
) -> Set[str]:
    """Same-module sync functions ``func`` calls directly."""
    called: Set[str] = set()
    for call in _own_calls(func):
        name: Optional[str] = None
        if isinstance(call.func, ast.Name):
            name = call.func.id
        elif (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in ("self", "cls")
        ):
            name = call.func.attr
        if name is None or name not in functions:
            continue
        node, _ = functions[name]
        if isinstance(node, ast.AsyncFunctionDef):
            continue  # awaited coroutines are not blocking edges
        called.add(name)
    return called
