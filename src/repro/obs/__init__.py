"""Observability for the serving stack — tracing, Prometheus, event journal.

Three stdlib-only building blocks, wired through :mod:`repro.serving`:

* :class:`~repro.obs.trace.Tracer` — sampled structured spans over the full
  event path (server decode → hub ingest → shard fan-out → per-monitor
  ``update_batch`` → sink emit → WAL commit), exportable as Chrome
  ``trace_event`` JSON that opens directly in Perfetto;
* :mod:`repro.obs.prom` — Prometheus text exposition (format 0.0.4) mirroring
  every hub counter, rate, and latency window, plus per-detector-class
  update-time histograms and top-K slowest-monitor attribution;
* :class:`~repro.obs.journal.EventJournal` — a bounded ring of structured
  operational events (shard respawns, reshard phases, breaker trips, WAL
  rotations…), the "what happened before it died" black box.

See ``docs/observability.md`` for the full model.
"""

from repro.obs.httpd import MetricsServer
from repro.obs.journal import EventJournal
from repro.obs.prom import Histogram, UpdateTimings, hub_exposition, metric_name
from repro.obs.trace import (
    SpanHandle,
    TraceContext,
    Tracer,
    chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "EventJournal",
    "Histogram",
    "MetricsServer",
    "SpanHandle",
    "TraceContext",
    "Tracer",
    "UpdateTimings",
    "chrome_trace",
    "hub_exposition",
    "metric_name",
    "write_chrome_trace",
]
