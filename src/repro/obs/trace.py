"""Structured tracing for the serving stack.

A :class:`Tracer` records lightweight spans into a bounded ring.  Sampling is
a *root* decision: :meth:`Tracer.sample_root` opens a new trace for every
N-th request (deterministic counter, not RNG — the ``determinism`` lint rule
bans unseeded randomness, and a counter makes CI traces reproducible), and
every child span created under a sampled root is recorded unconditionally.
A tracer built with ``sample_rate=0`` (the default) never opens a root and
:meth:`start_span` under a ``None`` parent returns ``None``, so the
instrumented call sites cost one predicate each when tracing is off —
``benchmarks/bench_obs_overhead.py`` pins the overhead.

Spans cross process boundaries as ``(trace_id, span_id)`` context tuples
(the sharded hub appends one to its fan-out pipe messages); each worker owns
its own tracer and stitches its spans under the propagated parent.  All
timestamps come from the tracer's clock — ``time.monotonic`` by default,
which on Linux reads the system-wide ``CLOCK_MONOTONIC``, so parent and
worker spans share an epoch without clock translation.

Finished spans are plain picklable dicts; :func:`chrome_trace` converts a
batch of them (from any number of processes) into Chrome ``trace_event``
JSON that loads directly in Perfetto / ``chrome://tracing``, with flow
arrows linking cross-process parent→child edges.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import ConfigurationError

__all__ = [
    "Tracer",
    "SpanHandle",
    "TraceContext",
    "chrome_trace",
    "write_chrome_trace",
]

#: What a span propagates across a process boundary: ``(trace_id, span_id)``.
TraceContext = Tuple[str, str]

#: Anything accepted as a span parent: a live handle, a propagated context
#: tuple (lists survive JSON round-trips), or ``None`` (no active trace).
ParentLike = Union["SpanHandle", TraceContext, Sequence[str], None]


class SpanHandle:
    """One open span; call :meth:`end` (or use as a context manager)."""

    __slots__ = (
        "_tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "args",
        "start",
        "_done",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        args: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.args = args
        self.start = tracer._clock()
        self._done = False

    def context(self) -> TraceContext:
        """The ``(trace_id, span_id)`` pair a child in another process needs."""
        return (self.trace_id, self.span_id)

    def add(self, **args: Any) -> None:
        """Attach extra key/value annotations to the span."""
        self.args.update(args)

    def end(self) -> None:
        """Close the span and commit it to the tracer's ring (idempotent)."""
        if self._done:
            return
        self._done = True
        self._tracer._finish(self)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.end()


class Tracer:
    """Sampling span recorder with a bounded ring of finished spans.

    Parameters
    ----------
    sample_rate:
        Fraction of roots to trace, in ``[0, 1]``.  ``0`` disables tracing
        entirely (the zero-cost default); ``1`` traces every root; a rate
        ``r`` in between traces every ``round(1/r)``-th root, starting with
        the first (so a smoke test at 1% still produces one trace
        immediately).
    capacity:
        Ring size of finished spans; older spans fall off.
    clock:
        Monotonic time source (seconds).  The default ``time.monotonic``
        shares an epoch across processes on Linux, aligning parent and
        worker spans in one exported trace.
    process:
        Human-readable name of the owning process (``"hub"``,
        ``"shard-00"``…) — becomes the Perfetto process label and the
        uniqueness prefix of generated ids.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        capacity: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        process: str = "hub",
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._interval = 0 if sample_rate <= 0.0 else max(1, round(1.0 / sample_rate))
        self._sample_rate = float(sample_rate)
        self._clock = clock
        self.process = str(process)
        self._pid = os.getpid()
        self._n_roots = 0
        self._n_sampled = 0
        self._n_finished = 0
        self._seq = 0
        self._spans: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    @property
    def enabled(self) -> bool:
        """Whether this tracer can ever open a root span."""
        return self._interval > 0

    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    def _next_id(self) -> str:
        self._seq += 1
        return f"{self.process}:{self._seq:x}"

    def sample_root(self, name: str, **args: Any) -> Optional[SpanHandle]:
        """Open a new trace's root span, or ``None`` when not sampled."""
        if self._interval == 0:
            return None
        self._n_roots += 1
        if (self._n_roots - 1) % self._interval != 0:
            return None
        self._n_sampled += 1
        trace_id = f"{self.process}:t{self._n_sampled:x}"
        return SpanHandle(self, trace_id, self._next_id(), None, name, args)

    def start_span(
        self, name: str, parent: ParentLike, **args: Any
    ) -> Optional[SpanHandle]:
        """Open a child span under ``parent``; ``None`` parent → ``None``.

        The chainable no-op on a ``None`` parent is what makes call sites
        unconditional: ``span = tracer.start_span("x", parent)`` followed by
        ``if span: span.end()`` costs nothing when no trace is active.  A
        propagated context tuple is honoured regardless of this tracer's own
        sample rate — sampling is the root's decision, and a worker must not
        drop spans of a trace its parent already committed to.
        """
        if parent is None:
            return None
        if isinstance(parent, SpanHandle):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = str(parent[0]), str(parent[1])
        return SpanHandle(self, trace_id, self._next_id(), parent_id, name, args)

    def begin(self, name: str, parent: ParentLike = None, **args: Any) -> Optional[SpanHandle]:
        """Child span under ``parent`` when given, else a sampled root.

        The single entry point for call sites that serve both as trace
        entry (library use — sample a root) and as continuation (a front-end
        already opened the root and handed its context down).
        """
        if parent is not None:
            return self.start_span(name, parent, **args)
        return self.sample_root(name, **args)

    def _finish(self, span: SpanHandle) -> None:
        end = self._clock()
        self._n_finished += 1
        self._spans.append(
            {
                "name": span.name,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "process": self.process,
                "pid": self._pid,
                "ts": span.start,
                "dur": max(end - span.start, 0.0),
                "args": dict(span.args),
            }
        )

    def spans(self) -> List[Dict[str, Any]]:
        """Snapshot of the retained finished spans (oldest first)."""
        return list(self._spans)

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the retained finished spans."""
        drained = list(self._spans)
        self._spans.clear()
        return drained

    def stats(self) -> Dict[str, Any]:
        """Counters for the ``metrics`` surfaces (all ``n_*`` are lifetime)."""
        return {
            "enabled": self.enabled,
            "sample_rate": self._sample_rate,
            "process": self.process,
            "n_trace_roots": self._n_roots,
            "n_trace_sampled": self._n_sampled,
            "n_trace_spans": self._n_finished,
            "n_trace_retained": len(self._spans),
        }


def chrome_trace(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert finished spans (from any mix of processes) to Chrome JSON.

    Emits one ``"X"`` (complete) event per span with microsecond
    timestamps, ``"M"`` process-name metadata per pid, and ``"s"``/``"f"``
    flow arrows for every parent→child edge that crosses a process — the
    shape Perfetto renders as linked tracks per process.
    """
    events: List[Dict[str, Any]] = []
    names_by_pid: Dict[int, str] = {}
    by_span_id: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        by_span_id[str(span["span_id"])] = span
        names_by_pid.setdefault(int(span["pid"]), str(span["process"]))
    for pid, process in sorted(names_by_pid.items()):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
    flow_id = 0
    for span in spans:
        pid = int(span["pid"])
        ts = float(span["ts"]) * 1e6
        dur = max(float(span["dur"]) * 1e6, 0.001)
        events.append(
            {
                "ph": "X",
                "name": str(span["name"]),
                "cat": "serving",
                "pid": pid,
                "tid": pid,
                "ts": ts,
                "dur": dur,
                "args": {
                    "trace_id": span["trace_id"],
                    "span_id": span["span_id"],
                    "parent_id": span["parent_id"],
                    **span.get("args", {}),
                },
            }
        )
        parent = by_span_id.get(str(span.get("parent_id")))
        if parent is None or int(parent["pid"]) == pid:
            continue
        flow_id += 1
        events.append(
            {
                "ph": "s",
                "name": "fan_out",
                "cat": "serving",
                "id": flow_id,
                "pid": int(parent["pid"]),
                "tid": int(parent["pid"]),
                "ts": float(parent["ts"]) * 1e6,
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "name": "fan_out",
                "cat": "serving",
                "id": flow_id,
                "pid": pid,
                "tid": pid,
                "ts": ts,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], spans: Sequence[Dict[str, Any]]
) -> Path:
    """Write spans as a Chrome ``trace_event`` JSON file; return its path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(chrome_trace(spans), separators=(",", ":")), encoding="utf-8"
    )
    return target
