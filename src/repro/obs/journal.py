"""Bounded journal of structured operational events — the flight recorder.

Counters say *how often* something happened; the journal says *what happened,
in what order, right before the incident*: shard respawns, reshard phase
transitions, webhook circuit-breaker trips, WAL segment rotations, transport
fallbacks, slow-flush threshold breaches.  Events live in a bounded
in-memory ring (queryable via the server's ``events`` wire op) and can be
mirrored to a JSON-lines file so the record survives the process.

:meth:`EventJournal.record` is thread-safe — the webhook sink's delivery
thread trips its breaker off the hub's event loop — and never raises: a
failed JSONL mirror write is counted (``n_mirror_failures``), not allowed to
take down the operational path that was being journaled.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from repro.exceptions import ConfigurationError

__all__ = ["EventJournal"]


class EventJournal:
    """Thread-safe bounded ring of ``{"ts", "kind", ...}`` event dicts.

    Parameters
    ----------
    capacity:
        Maximum retained events; older ones fall off (the JSONL mirror, if
        any, keeps the full history).
    jsonl_path:
        Optional JSON-lines mirror file, opened in append mode and flushed
        per event so a ``kill -9`` loses at most the OS buffer.
    """

    def __init__(
        self,
        capacity: int = 512,
        jsonl_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}
        self._n_recorded = 0
        self._n_mirror_failures = 0
        self._jsonl_path = Path(jsonl_path) if jsonl_path else None
        self._fh: Optional[Any] = None
        if self._jsonl_path is not None:
            self._jsonl_path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self._jsonl_path, "a", encoding="utf-8")

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the recorded dict.

        ``ts`` is a wall-clock timestamp by contract: journal events are
        operator-facing forensics ("what happened at 14:03"), correlated
        with logs and external monitoring, and are never replayed into
        detector state.
        """
        event: Dict[str, Any] = {"ts": time.time(), "kind": str(kind)}
        event.update(fields)
        with self._lock:
            self._events.append(event)
            self._counts[event["kind"]] = self._counts.get(event["kind"], 0) + 1
            self._n_recorded += 1
            if self._fh is not None:
                try:
                    self._fh.write(
                        json.dumps(event, separators=(",", ":"), default=str)
                        + "\n"
                    )
                    self._fh.flush()
                except Exception:
                    # A full disk or closed mirror must not take down the
                    # operational path being journaled; the ring still has
                    # the event.
                    self._n_mirror_failures += 1
        return event

    def events(
        self, limit: Optional[int] = None, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """The retained events, oldest first, optionally filtered by kind."""
        with self._lock:
            selected = [
                dict(event)
                for event in self._events
                if kind is None or event["kind"] == kind
            ]
        if limit is not None and limit >= 0:
            selected = selected[-limit:]
        return selected

    def counts(self) -> Dict[str, int]:
        """Lifetime event counts per kind (feeds the Prometheus exposition)."""
        with self._lock:
            return dict(self._counts)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "n_journal_events": self._n_recorded,
                "n_journal_retained": len(self._events),
                "n_mirror_failures": self._n_mirror_failures,
            }

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
