"""Prometheus text exposition (format 0.0.4) for the serving hubs.

:func:`hub_exposition` renders a :class:`~repro.serving.hub.MonitorHub` or a
:class:`~repro.serving.sharded.ShardedHub` as the plain-text format every
Prometheus-compatible scraper ingests.  The mapping is registry-driven, not
hand-enumerated: every ``n_*`` key the hub's ``stats()`` / ``metrics()``
dicts expose becomes a ``repro_hub_n_*`` sample automatically (a counter
added in a future PR shows up in the exposition without touching this
module — ``tests/unit/test_obs_prom.py`` pins that invariant), every
:class:`~repro.serving.metrics.LatencyWindow` summary becomes a Prometheus
summary with ``quantile`` labels, and sharded clusters additionally emit
each live shard's counters under a ``shard`` label next to the merged
totals.

Two instruments live here rather than in :mod:`repro.serving.metrics`
because their output shape is the exposition's: :class:`Histogram`
(fixed-bucket, cumulative, mergeable across processes) and
:class:`UpdateTimings` (per-detector-class update-time histograms plus
top-K slowest-monitor cost attribution, fed by the hub's ``update_batch``
timing seam).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "Histogram",
    "TimingRecorder",
    "UpdateTimings",
    "hub_exposition",
    "metric_name",
]

#: Hub counters that can go down (or describe capacity) — exposed as gauges;
#: every other ``n_*`` key is a monotonic counter.
GAUGE_KEYS = frozenset(
    {
        "n_monitors",
        "n_tenants",
        "n_shards",
        "n_alive_shards",
        "n_trace_retained",
        "n_journal_retained",
    }
)

#: Top-K size of the slowest-monitor attribution in the exposition.
TOP_K_MONITORS = 10


def metric_name(counter_key: str) -> str:
    """Exposition name of a hub-level ``n_*`` counter key (``repro_hub_…``)."""
    return f"repro_hub_{counter_key}"


class Histogram:
    """Fixed-bucket cumulative histogram, mergeable across processes.

    ``snapshot()`` is a plain JSON/pickle-safe dict (``buckets`` as
    ``[le, cumulative_count]`` pairs plus ``sum``/``count``), which is how
    per-shard histograms travel over the worker pipes before
    :meth:`merge_snapshots` combines them in the parent.
    """

    #: Default bucket upper bounds in seconds, sized for ``update_batch``
    #: calls (microseconds for a small chunk, up to a second for a huge one).
    DEFAULT_BUCKETS: Tuple[float, ...] = (
        1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
        1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
    )

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        edges = tuple(float(edge) for edge in (buckets or self.DEFAULT_BUCKETS))
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigurationError(
                "histogram buckets must be a non-empty strictly ascending "
                f"sequence, got {buckets!r}"
            )
        # Boxed-float storage beats array.array here: bisect over packed
        # doubles boxes a fresh float per comparison, while pre-boxed
        # floats compare object-to-object — measurably faster on the warm
        # per-update hot path.
        self._edges = edges
        #: Per-bucket (non-cumulative) counts; the extra slot is +Inf.
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self._counts[bisect_left(self._edges, value)] += 1
        self._sum += value
        self._count += 1

    def snapshot(self) -> Dict[str, Any]:
        buckets: List[List[float]] = []
        cumulative = 0
        for edge, count in zip(self._edges, self._counts):
            cumulative += count
            buckets.append([edge, cumulative])
        return {"buckets": buckets, "sum": self._sum, "count": self._count}

    @staticmethod
    def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
        """Sum snapshots bucket-wise (same-edge histograms from N shards)."""
        acc: Dict[float, int] = {}
        total = 0
        sigma = 0.0
        for snap in snapshots:
            for edge, cumulative in snap["buckets"]:
                acc[float(edge)] = acc.get(float(edge), 0) + int(cumulative)
            total += int(snap["count"])
            sigma += float(snap["sum"])
        return {
            "buckets": [[edge, acc[edge]] for edge in sorted(acc)],
            "sum": sigma,
            "count": total,
        }


#: Attribution-row layout: ``[detector, sampled_seconds, n_updates,
#: sampled_values, n_sampled]`` (see :class:`TimingRecorder`).
_ROW_SECONDS = 1
_ROW_UPDATES = 2
_ROW_VALUES = 3
_ROW_SAMPLED = 4


class TimingRecorder:
    """Pre-resolved ``(class histogram, monitor row)`` handle with sampled
    timing; see :meth:`UpdateTimings.recorder`.

    Timing every ``update_batch`` call costs two clock reads plus a
    histogram insert — measurably above the <2% ingest-overhead budget for
    cheap detectors.  The hot path therefore *counts* every call via
    :meth:`tick` (one list-slot increment) but only *times* one call in
    :data:`SAMPLE_EVERY`, starting with the first.  The snapshot scales the
    sampled sums by ``n_updates / n_sampled`` — exact whenever every call
    was sampled (single updates, the direct :meth:`UpdateTimings.observe`
    path), an unbiased estimate otherwise.
    """

    #: Hot-path sampling period (power of two — :meth:`tick` masks with
    #: ``SAMPLE_EVERY - 1``).
    SAMPLE_EVERY = 8

    __slots__ = ("_histogram", "_row")

    def __init__(self, histogram: Histogram, row: List[Any]) -> None:
        self._histogram = histogram
        self._row = row

    def tick(self) -> bool:
        """Count one update; True when this call's duration should be timed."""
        row = self._row
        count = row[_ROW_UPDATES] = row[_ROW_UPDATES] + 1
        return (count & (self.SAMPLE_EVERY - 1)) == 1

    def record(self, seconds: float, n_values: int) -> None:
        """Record one *sampled* duration (follows a True :meth:`tick`)."""
        self._histogram.observe(seconds)
        row = self._row
        row[_ROW_SECONDS] += seconds
        row[_ROW_VALUES] += n_values
        row[_ROW_SAMPLED] += 1


class UpdateTimings:
    """Per-detector-class update-time histograms + per-monitor attribution.

    The hub's ``_feed`` seam reports every ``update_batch`` call here; the
    snapshot answers both "how is DDM's update-time distribution shifting"
    (class histograms) and "which tenant's monitors burn the CPU" (top-K
    monitors by cumulative update seconds).
    """

    def __init__(self, top_k: int = TOP_K_MONITORS) -> None:
        if top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
        self._top_k = top_k
        self._by_class: Dict[str, Histogram] = {}
        #: ``(tenant, monitor_id) -> [detector, sampled_seconds, n_updates,
        #: sampled_values, n_sampled]``
        self._by_monitor: Dict[Tuple[str, str], List[Any]] = {}

    def observe(
        self,
        detector: str,
        tenant: str,
        monitor_id: str,
        seconds: float,
        n_values: int,
    ) -> None:
        """Record one fully-measured update (every call timed — exact)."""
        recorder = self.recorder(detector, tenant, monitor_id)
        recorder.tick()
        recorder.record(seconds, n_values)

    def recorder(
        self, detector: str, tenant: str, monitor_id: str
    ) -> "TimingRecorder":
        """A bound per-monitor recorder for the hub's per-update hot path.

        Resolves the class histogram and the monitor's attribution row once;
        the returned handle then counts every call via
        :meth:`~TimingRecorder.tick` and times only the sampled ones —
        cheap enough to run on every ``update_batch`` call
        (``benchmarks/bench_obs_overhead.py`` pins the bound).
        """
        histogram = self._by_class.get(detector)
        if histogram is None:
            histogram = self._by_class[detector] = Histogram()
        row = self._by_monitor.get((tenant, monitor_id))
        if row is None:
            row = self._by_monitor[(tenant, monitor_id)] = [
                detector, 0.0, 0, 0, 0,
            ]
        return TimingRecorder(histogram, row)

    def snapshot(self) -> Dict[str, Any]:
        def estimate(row: List[Any]) -> Tuple[float, int]:
            """Scale sampled sums to the full call count (exact when every
            call was sampled)."""
            _, seconds, n_updates, n_values, n_sampled = row
            if n_sampled in (0, n_updates):
                return seconds, n_values
            scale = n_updates / n_sampled
            return seconds * scale, round(n_values * scale)

        slowest = sorted(
            self._by_monitor.items(),
            key=lambda item: estimate(item[1])[0],
            reverse=True,
        )[: self._top_k]
        return {
            "classes": {
                name: histogram.snapshot()
                for name, histogram in self._by_class.items()
            },
            "monitors": [
                {
                    "tenant": tenant,
                    "monitor_id": monitor_id,
                    "detector": row[0],
                    "seconds": round(estimate(row)[0], 9),
                    "n_updates": row[_ROW_UPDATES],
                    "n_values": estimate(row)[1],
                }
                for (tenant, monitor_id), row in slowest
            ],
        }

    @staticmethod
    def merge_snapshots(
        snapshots: Iterable[Mapping[str, Any]], top_k: int = TOP_K_MONITORS
    ) -> Dict[str, Any]:
        """Merge per-shard snapshots: histograms sum, top-K re-ranks."""
        classes: Dict[str, List[Mapping[str, Any]]] = {}
        monitors: List[Dict[str, Any]] = []
        for snap in snapshots:
            for name, histogram in snap.get("classes", {}).items():
                classes.setdefault(name, []).append(histogram)
            monitors.extend(snap.get("monitors", []))
        monitors.sort(key=lambda row: row["seconds"], reverse=True)
        return {
            "classes": {
                name: Histogram.merge_snapshots(parts)
                for name, parts in classes.items()
            },
            "monitors": monitors[:top_k],
        }


# ------------------------------------------------------------- text format


def _escape(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


#: Sample-name suffixes that belong to their base family (histogram/summary
#: series components, per the exposition spec).
_FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


class _Exposition:
    """Buffers samples grouped per family.

    The text format requires every line of a metric family to form one
    contiguous block; a sharded hub emits the same families once per shard,
    so samples are buffered per family and rendered grouped, in family
    registration order.
    """

    def __init__(self) -> None:
        self._meta: Dict[str, Tuple[str, str]] = {}
        self._order: List[str] = []
        self._samples: Dict[str, List[str]] = {}

    def family(self, name: str, kind: str, help_text: str) -> None:
        if name in self._meta:
            return
        self._meta[name] = (kind, help_text)
        self._order.append(name)
        self._samples[name] = []

    def _family_of(self, sample_name: str) -> str:
        if sample_name in self._meta:
            return sample_name
        for suffix in _FAMILY_SUFFIXES:
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in self._meta:
                    return base
        self.family(sample_name, "untyped", sample_name)
        return sample_name

    def sample(
        self, name: str, labels: Optional[Mapping[str, Any]], value: Any
    ) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape(val)}"' for key, val in labels.items()
            )
            line = f"{name}{{{rendered}}} {_fmt(value)}"
        else:
            line = f"{name} {_fmt(value)}"
        self._samples[self._family_of(name)].append(line)

    def render(self) -> str:
        lines: List[str] = []
        for name in self._order:
            kind, help_text = self._meta[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(self._samples[name])
        return "\n".join(lines) + "\n"


def _is_latency_summary(value: Any) -> bool:
    return isinstance(value, Mapping) and {"count", "p50", "p95"} <= set(value)


def _emit_counters(
    out: _Exposition,
    prefix: str,
    flat: Mapping[str, Any],
    labels: Optional[Mapping[str, Any]] = None,
) -> None:
    """Emit every ``n_*`` integer key of ``flat`` as ``<prefix>_<key>``."""
    for key in sorted(flat):
        value = flat[key]
        if not key.startswith("n_") or isinstance(value, bool):
            continue
        if not isinstance(value, (int, float)):
            continue
        name = f"{prefix}_{key}"
        kind = "gauge" if key in GAUGE_KEYS else "counter"
        out.family(name, kind, f"hub {key} counter")
        out.sample(name, labels, value)


def _emit_summary(
    out: _Exposition,
    name: str,
    summary: Mapping[str, Any],
    labels: Optional[Mapping[str, Any]] = None,
) -> None:
    """A LatencyWindow ``summary_ms()`` dict as a Prometheus summary.

    Quantiles cover the retained window; ``_count`` is the lifetime
    ``n_total`` (the summary-count convention), with the window size as a
    separate ``_window`` gauge so the two are never conflated again.
    """
    out.family(name, "summary", f"{name} over the retained window (ms)")
    for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
        out.sample(name, {**(labels or {}), "quantile": quantile}, summary[key])
    out.sample(f"{name}_count", labels, summary.get("n_total", summary["count"]))
    window_name = f"{name}_window"
    out.family(window_name, "gauge", f"samples retained in the {name} window")
    out.sample(window_name, labels, summary["count"])


def _emit_update_timings(out: _Exposition, snapshot: Mapping[str, Any]) -> None:
    name = "repro_detector_update_seconds"
    out.family(name, "histogram", "update_batch latency per detector class")
    for detector in sorted(snapshot.get("classes", {})):
        histogram = snapshot["classes"][detector]
        for edge, cumulative in histogram["buckets"]:
            out.sample(
                f"{name}_bucket",
                {"detector": detector, "le": _fmt(edge)},
                cumulative,
            )
        out.sample(
            f"{name}_bucket",
            {"detector": detector, "le": "+Inf"},
            histogram["count"],
        )
        out.sample(f"{name}_sum", {"detector": detector}, histogram["sum"])
        out.sample(f"{name}_count", {"detector": detector}, histogram["count"])
    seconds_name = "repro_monitor_update_seconds_total"
    values_name = "repro_monitor_update_values_total"
    out.family(
        seconds_name, "counter", "cumulative update time of the slowest monitors"
    )
    out.family(
        values_name, "counter", "values consumed by the slowest monitors"
    )
    for row in snapshot.get("monitors", []):
        labels = {
            "tenant": row["tenant"],
            "monitor": row["monitor_id"],
            "detector": row["detector"],
        }
        out.sample(seconds_name, labels, row["seconds"])
        out.sample(values_name, labels, row["n_values"])


def _emit_wal(
    out: _Exposition,
    wal: Optional[Mapping[str, Any]],
    labels: Optional[Mapping[str, Any]] = None,
) -> None:
    if not wal:
        return
    _emit_counters(out, "repro_wal", wal, labels)
    summary = wal.get("fsync_latency_ms")
    if _is_latency_summary(summary):
        _emit_summary(out, "repro_wal_fsync_latency_ms", summary, labels)


def _emit_sinks(
    out: _Exposition,
    sinks: Iterable[Mapping[str, Any]],
    labels: Optional[Mapping[str, Any]] = None,
) -> None:
    for index, sink in enumerate(sinks):
        sink_labels = {
            **(labels or {}),
            "sink": sink.get("sink", "?"),
            "index": str(index),
        }
        _emit_counters(out, "repro_sink", sink, sink_labels)


def _emit_hub_body(
    out: _Exposition, metrics: Mapping[str, Any], shard: Optional[str]
) -> None:
    """Shared emission of one hub's ``metrics()`` dict (parent or shard)."""
    prefix = "repro_shard" if shard is not None else "repro_hub"
    labels = {"shard": shard} if shard is not None else None
    _emit_counters(out, prefix, metrics, labels)
    trace = metrics.get("trace")
    if isinstance(trace, Mapping):
        _emit_counters(out, prefix, trace, labels)
    rate_name = f"{prefix}_ingest_rate"
    out.family(rate_name, "gauge", "events/second over the last minute")
    out.sample(rate_name, labels, metrics.get("ingest_rate", 0.0))
    flush = metrics.get("flush_latency_ms")
    if _is_latency_summary(flush):
        _emit_summary(out, f"{prefix}_flush_latency_ms", flush, labels)
    _emit_wal(out, metrics.get("wal"), labels)
    _emit_sinks(out, metrics.get("sinks", ()), labels)


def hub_exposition(hub: Any) -> str:
    """Render a hub (single-process or sharded) as Prometheus text.

    Duck-typed the way the TCP server distinguishes the two hub shapes
    (a sharded hub has ``drain_alerts``): a sharded cluster emits its merged
    totals as ``repro_hub_*`` plus every live shard's counters as
    ``repro_shard_*{shard="N"}``, with per-detector-class histograms merged
    across shards.
    """
    out = _Exposition()
    stats = hub.stats()
    metrics = hub.metrics()
    # Union of the two dicts' counters: stats carries the registry-facing
    # ones (n_drifts, n_warnings…), metrics the operational ones.
    top: Dict[str, Any] = dict(metrics)
    for key, value in stats.items():
        top.setdefault(key, value)
    _emit_hub_body(out, top, shard=None)
    shards = metrics.get("shards")
    if isinstance(shards, list):
        timing_parts = []
        for position, shard_metrics in enumerate(shards):
            label = str(shard_metrics.get("shard", position))
            _emit_hub_body(out, shard_metrics, shard=label)
            part = shard_metrics.get("detector_update")
            if part:
                timing_parts.append(part)
        if timing_parts:
            _emit_update_timings(out, UpdateTimings.merge_snapshots(timing_parts))
    else:
        timings = metrics.get("detector_update")
        if timings:
            _emit_update_timings(out, timings)
    journal = getattr(hub, "journal", None)
    if journal is not None:
        name = "repro_journal_events_total"
        out.family(name, "counter", "operational journal events by kind")
        counts = journal.counts()
        for kind in sorted(counts):
            out.sample(name, {"kind": kind}, counts[kind])
        _emit_counters(out, "repro_hub", journal.stats())
    return out.render()
