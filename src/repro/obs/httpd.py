"""Tiny asyncio HTTP endpoint serving the Prometheus exposition.

A deliberately minimal single-purpose server — ``GET /metrics`` returns the
text exposition, everything else is 404 — so the serving process exposes a
scrape target without pulling an HTTP framework into the stdlib-only stack.
It runs on the same event loop as the TCP serving front-end; rendering the
exposition is a hub-dict walk, cheap enough to do inline per scrape.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Callable, Dict, Optional

__all__ = ["MetricsServer"]

logger = logging.getLogger(__name__)

#: The exposition content type scrapers negotiate for (format 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Upper bound of one request head (line + headers) — scrape requests are
#: tiny; anything larger is not a scraper.
_MAX_REQUEST_BYTES = 16 * 1024


class MetricsServer:
    """Serve ``GET /metrics`` from a render callback.

    Parameters
    ----------
    render:
        Zero-argument callable returning the exposition text (typically
        ``lambda: hub_exposition(hub)``); called once per scrape.
    host, port:
        Listen address; port ``0`` binds an ephemeral port (read
        :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._render = render
        self._host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._n_scrapes = 0
        self._n_render_failures = 0

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start` runs)."""
        if self._server is not None and self._server.sockets:
            return int(self._server.sockets[0].getsockname()[1])
        return self._requested_port

    @property
    def n_scrapes(self) -> int:
        return self._n_scrapes

    def stats(self) -> Dict[str, Any]:
        return {
            "n_scrapes": self._n_scrapes,
            "n_render_failures": self._n_render_failures,
        }

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self._requested_port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            consumed = len(request_line)
            # Drain the headers; scrapers send no body on GET.
            while consumed < _MAX_REQUEST_BYTES:
                line = await reader.readline()
                consumed += len(line)
                if not line.strip():
                    break
            parts = request_line.split()
            if len(parts) < 2 or parts[0] != b"GET":
                await self._respond(writer, 405, "method not allowed\n")
                return
            path = parts[1].split(b"?", 1)[0]
            if path not in (b"/metrics", b"/metrics/"):
                await self._respond(writer, 404, "try /metrics\n")
                return
            try:
                body = self._render()
            except Exception:
                # A failing render must 500 the scrape, not kill the endpoint.
                self._n_render_failures += 1
                logger.exception("metrics exposition render failed")
                await self._respond(writer, 500, "exposition render failed\n")
                return
            self._n_scrapes += 1
            await self._respond(writer, 200, body, content_type=CONTENT_TYPE)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "Internal Server Error"
        )
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii") + payload)
        await writer.drain()
