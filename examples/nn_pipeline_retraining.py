"""Neural-network pipeline with drift-triggered fine-tuning (Figure 5, small).

Reproduces the structure of the paper's CIFAR-10 experiment at laptop scale:
a pre-trained MLP classifies streaming batches of synthetic "images", the
per-batch loss feeds a drift detector, and every detection triggers a fixed
budget of fine-tuning batches.  Because ADWIN raises more false alarms than
OPTWIN, its pipeline spends more time retraining — the source of the paper's
21% end-to-end speed-up.

Run with::

    python examples/nn_pipeline_retraining.py
"""

from __future__ import annotations

from repro.experiments.figure5 import run_figure5


def main() -> None:
    print("Running the NN pipeline (OPTWIN vs ADWIN) on the synthetic image stream...")
    results = run_figure5(
        n_batches=400,
        batch_size=32,
        n_drifts=4,
        n_features=64,
        n_classes=10,
        fine_tune_batches=40,
        pretrain_examples=4_000,
        pretrain_epochs=12,
        seed=1,
    )

    print(f"\n{'detector':18s} {'detections':>10s} {'TP':>4s} {'FP':>4s} "
          f"{'retrain batches':>16s} {'retrain s':>10s} {'total s':>9s} {'accuracy':>9s}")
    for name, result in results.items():
        row = result.as_row()
        print(f"{name:18s} {row['detections']:10d} {row['tp']:4d} {row['fp']:4d} "
              f"{row['retraining_batches']:16d} {row['retraining_seconds']:10.2f} "
              f"{row['total_seconds']:9.2f} {100 * row['mean_accuracy']:8.1f}%")

    adwin = results["ADWIN"]
    optwin = results["OPTWIN rho=0.5"]
    if adwin.report.n_retraining_batches > 0:
        saved = 1.0 - (
            optwin.report.n_retraining_batches / adwin.report.n_retraining_batches
        )
        print(f"\nretraining batches triggered: OPTWIN "
              f"{optwin.report.n_retraining_batches} vs ADWIN "
              f"{adwin.report.n_retraining_batches} "
              f"({100 * saved:+.0f}% saved by OPTWIN on this run)")
    print(
        "At CIFAR-10 scale the paper measures a 21% end-to-end speed-up for\n"
        "OPTWIN: retraining a CNN is expensive there, so every false alarm that\n"
        "ADWIN raises (and OPTWIN avoids) costs minutes of wasted fine-tuning.\n"
        "At this toy scale the surrogate MLP retrains in milliseconds, so the\n"
        "wall-clock gap is dominated by detector overhead instead — the\n"
        "retraining-batch counts above are the number to compare."
    )


if __name__ == "__main__":
    main()
