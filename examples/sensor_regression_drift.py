"""Sensor-monitoring (regression) scenario: mean and variance drifts in losses.

Error-rate-based detectors usually watch a classifier's 0/1 errors, but OPTWIN
also accepts real-valued losses, and — unlike ADWIN or DDM — it reacts to
changes in the *variance* of those losses.  This example simulates a
regression model monitoring a sensor:

* phase 1 — healthy sensor: small, stable prediction errors;
* phase 2 — calibration drift: the error *mean* rises (a classic drift);
* phase 3 — intermittent fault: the error *mean stays the same* but its
  *variance* explodes (the paper's motivating example for the F-test).

The example shows that OPTWIN flags both drifts while a mean-only detector
(ADWIN) reliably sees only the first one.

Run with::

    python examples/sensor_regression_drift.py
"""

from __future__ import annotations

from repro import Adwin, Kswin, Optwin
from repro.streams import GaussianSegment, gaussian_error_stream

PHASE_LENGTH = 4_000


def build_sensor_loss_stream(seed: int = 11):
    """Healthy -> mean drift -> variance-only drift."""
    segments = [
        GaussianSegment(PHASE_LENGTH, mean=0.10, std=0.03),   # healthy
        GaussianSegment(PHASE_LENGTH, mean=0.30, std=0.03),   # calibration drift
        GaussianSegment(PHASE_LENGTH, mean=0.30, std=0.25),   # intermittent fault
    ]
    return gaussian_error_stream(segments, width=1, seed=seed)


def run_detector(name, detector, stream):
    detections = []
    drift_types = []
    for index, value in enumerate(stream):
        result = detector.update(value)
        if result.drift_detected:
            detections.append(index)
            drift_types.append(result.drift_type.value if result.drift_type else "?")
    print(f"\n=== {name} ===")
    if not detections:
        print("  no drifts detected")
        return
    for position, kind in zip(detections, drift_types):
        phase = min(position // PHASE_LENGTH, 2)
        label = ["healthy phase (false alarm)", "mean drift", "variance drift"][phase]
        print(f"  detection at {position:6d}  (type reported: {kind:9s}  -> {label})")


def main() -> None:
    stream = build_sensor_loss_stream()
    print("Sensor loss stream with a mean drift at", stream.drift_positions[0],
          "and a variance-only drift at", stream.drift_positions[1])

    # two_sided variance detection needs one_sided=False because the variance
    # drift does not move the mean of the losses.
    run_detector(
        "OPTWIN (rho=0.5, two-sided)",
        Optwin(delta=0.99, rho=0.5, one_sided=False),
        stream,
    )
    run_detector("ADWIN (mean-only baseline)", Adwin(), stream)
    run_detector("KSWIN (distribution-based extension)", Kswin(seed=1), stream)

    print(
        "\nOPTWIN reports the second drift as a 'variance' drift via its F-test;"
        "\nADWIN, which only compares sub-window means, has no mechanism to see it."
    )


if __name__ == "__main__":
    main()
