"""Compare every drift detector on sudden and gradual drifts (mini Table 1).

Runs the paper's "Concept Drift interface" comparison at a reduced scale
(5 repetitions, shorter streams) and prints Table-1-style rows — detector,
mean delay, false positives per run, precision, recall, F1 — for a sudden and
a gradual binary drift.

Run with::

    python examples/detector_comparison.py
"""

from __future__ import annotations

from repro.evaluation import format_detection_rows
from repro.experiments.table1 import (
    run_gradual_binary,
    run_sudden_binary,
    summaries_to_rows,
)


def main() -> None:
    print("Running 5 repetitions per detector (this takes a minute)...\n")

    sudden = run_sudden_binary(n_repetitions=5, segment_length=3_000, base_seed=1)
    print(format_detection_rows(summaries_to_rows(sudden),
                                title="Sudden binary drift (error rate 0.2 -> 0.6)"))

    gradual = run_gradual_binary(
        n_repetitions=5, segment_length=3_000, width=800, base_seed=1
    )
    print()
    print(format_detection_rows(summaries_to_rows(gradual),
                                title="Gradual binary drift (width 800)"))

    print(
        "\nReading the rows: OPTWIN keeps precision high (few false positives)\n"
        "while matching the recall of the baselines — the same pattern as\n"
        "Table 1 of the paper."
    )


if __name__ == "__main__":
    main()
