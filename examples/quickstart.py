"""Quickstart: detect a concept drift in an error stream with OPTWIN.

The script simulates the error rate of an online learner that degrades halfway
through the stream (error probability jumps from 10% to 45%), feeds each error
indicator to OPTWIN, and prints where the drift was flagged together with the
detector's diagnostic statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Optwin
from repro.streams import BinarySegment, binary_error_stream


def main() -> None:
    # 1. Build a stream of 0/1 error indicators with a known drift at 5,000
    #    (the learner's error rate jumps from 20% to 60%).
    drift_position = 5_000
    stream = binary_error_stream(
        segments=[BinarySegment(drift_position, 0.20), BinarySegment(5_000, 0.60)],
        width=1,
        seed=42,
    )
    print(f"stream of {len(stream)} error indicators, true drift at {drift_position}")

    # 2. Create the detector with the paper's configuration.
    detector = Optwin(delta=0.99, rho=0.5, w_max=25_000)

    # 3. Feed the stream element by element (as an online learner would).
    first_true_detection = None
    false_alarms = []
    for index, error in enumerate(stream):
        result = detector.update(error)
        if not result.drift_detected:
            continue
        if index < drift_position:
            false_alarms.append(index)
        elif first_true_detection is None:
            first_true_detection = index
            print(f"drift detected at element {index} "
                  f"(delay: {index - drift_position} elements, "
                  f"type: {result.drift_type.value})")
            print("  diagnostic statistics at the detection point:")
            for key in ("window_size", "mean_hist", "mean_new", "t_statistic",
                        "t_critical"):
                print(f"    {key:12s} = {result.statistics[key]:.4f}")

    if first_true_detection is None:
        print("no drift detected (unexpected for this stream)")
    print(f"false alarms before the drift: {len(false_alarms)}")

    # 4. The detector resets itself after a drift and keeps monitoring; a
    #    stationary continuation should stay quiet.
    post_drift_errors = (np.random.default_rng(7).random(2_000) < 0.60).astype(float)
    post_false_alarms = sum(
        detector.update(error).drift_detected for error in post_drift_errors
    )
    print(f"false alarms over the next 2,000 stationary elements: {post_false_alarms}")


if __name__ == "__main__":
    main()
