"""Live drift monitoring with the serving hub — the daemon pattern.

This example mirrors the production shape of a trading/serving daemon (cf.
ProfitForge's ``trainer_daemon.py``): a long-lived process scores incoming
data with an online model, feeds the 0/1 prediction errors into drift
monitors, fires notifications when a monitor flags a drift, retrains the
model, and checkpoints its monitoring state so a restart resumes exactly
where it stopped.

Here the "production traffic" is a SEA stream with two injected concept
drifts, the model is the incremental Naive Bayes used throughout the paper's
experiments, and two detectors (OPTWIN and DDM) watch the same error stream
side by side under one tenant.

Run with::

    PYTHONPATH=src python examples/live_monitoring.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.learners.naive_bayes import NaiveBayes
from repro.serving import CallbackSink, MonitorHub
from repro.streams.drift import MultiConceptDriftStream
from repro.streams.synthetic.sea import SeaGenerator

TENANT = "payments-team"
N_INSTANCES = 9_000
BATCH = 250  # errors buffered between hub flushes (the "poll interval")


def notify(alert) -> None:
    """Stand-in for a pager/Slack/Discord notification."""
    print(
        f"  [{alert.kind:^7s}] {alert.tenant}/{alert.monitor_id} "
        f"({alert.detector}) at element {alert.position}"
    )


def main() -> None:
    stream = MultiConceptDriftStream(
        [
            SeaGenerator(classification_function=1, noise_fraction=0.05, seed=1),
            SeaGenerator(classification_function=3, noise_fraction=0.05, seed=2),
            SeaGenerator(classification_function=4, noise_fraction=0.05, seed=3),
        ],
        drift_positions=[3_000, 6_000],
        seed=4,
    )
    learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)

    checkpoint_dir = Path(tempfile.mkdtemp(prefix="live-monitoring-"))
    hub = MonitorHub(
        checkpoint_dir=checkpoint_dir,
        sinks=[CallbackSink(notify)],
        checkpoint_every=2_000,  # durable state every 2 000 observed errors
        wal_dir=checkpoint_dir / "wal",  # alerts logged before delivery
    )
    hub.register(TENANT, "sea-optwin", "OPTWIN", {"w_max": 5_000})
    hub.register(TENANT, "sea-ddm", "DDM")

    print(f"monitoring {N_INSTANCES} instances (drifts injected every 3000)...")
    buffer = []
    for index, instance in enumerate(stream.take(N_INSTANCES)):
        prediction = learner.predict_one(instance)
        buffer.append(1.0 if prediction != instance.y else 0.0)
        learner.learn_one(instance)

        if len(buffer) == BATCH or index == N_INSTANCES - 1:
            # One flush feeds every monitor through its vectorised fast path.
            results = hub.ingest(
                [
                    (TENANT, "sea-optwin", buffer),
                    (TENANT, "sea-ddm", buffer),
                ]
            )
            buffer = []
            if any(result.drift_positions for result in results):
                # The paper's adaptation strategy: retrain on drift.
                learner = NaiveBayes(
                    schema=stream.schema, n_classes=stream.n_classes
                )

    print("\nfinal monitor stats:")
    for monitor in ("sea-optwin", "sea-ddm"):
        stats = hub.stats(TENANT, monitor)
        print(
            f"  {monitor:12s} n_seen={stats['n_seen']:5d} "
            f"drifts={stats['n_drifts']} warnings={stats['n_warnings']}"
        )

    # The `metrics` op view: ingest rate, flush latency, WAL and sink health.
    metrics = hub.metrics()
    wal = metrics["wal"]
    print(
        f"\nhub metrics: ingest_rate={metrics['ingest_rate']:,.0f} events/s, "
        f"flush p95={metrics['flush_latency_ms']['p95']:.2f} ms, "
        f"wal={wal['n_alerts']} alerts in {wal['n_segments']} segment(s) "
        f"(fsync={wal['fsync_mode']})"
    )
    print("last 3 alerts from the WAL (the `alerts_history` op):")
    for record in hub.alerts_history(tenant=TENANT, limit=3):
        print(
            f"  seq={record['seq']} [{record['kind']:^7s}] "
            f"{record['monitor_id']} at element {record['position']}"
        )

    # A restarted daemon resumes from the checkpoint, bit-exactly; the WAL
    # replays any alerts logged after it (none here — clean shutdown).
    path = hub.checkpoint()
    resumed = MonitorHub(
        checkpoint_dir=checkpoint_dir, wal_dir=checkpoint_dir / "wal"
    )
    assert resumed.stats(TENANT, "sea-optwin") == hub.stats(TENANT, "sea-optwin")
    print(f"\ncheckpoint written to {path}; resume verified.")

    reshard_act()
    observability_act()


def reshard_act() -> None:
    """Grow a live ShardedHub mid-stream — no restart, no lost events."""
    from repro.serving import ShardedHub

    stream = MultiConceptDriftStream(
        [
            SeaGenerator(classification_function=1, noise_fraction=0.05, seed=1),
            SeaGenerator(classification_function=3, noise_fraction=0.05, seed=2),
        ],
        drift_positions=[3_000],
        seed=4,
    )
    learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
    errors = []
    for instance in stream.take(6_000):
        errors.append(1.0 if learner.predict_one(instance) != instance.y else 0.0)
        learner.learn_one(instance)

    cluster_dir = Path(tempfile.mkdtemp(prefix="live-monitoring-cluster-"))
    cluster = ShardedHub(2, checkpoint_dir=cluster_dir)
    try:
        cluster.register(TENANT, "sea-optwin", "OPTWIN", {"w_max": 5_000})
        cluster.register(TENANT, "sea-ddm", "DDM")

        # First half of the stream on 2 shards...
        half = len(errors) // 2
        cluster.ingest(
            [(TENANT, m, errors[:half]) for m in ("sea-optwin", "sea-ddm")]
        )
        # ...grow the cluster live (monitors hand off bit-exactly)...
        report = cluster.reshard(4)
        print(
            f"\nresharded live: now {cluster.n_shards} shards, "
            f"{report['n_slots_moved']} of {cluster.n_slots} slots moved, "
            f"{report['n_monitors_moved']} monitor(s) relocated"
        )
        # ...and keep ingesting where we left off: no events lost, no reset.
        cluster.ingest(
            [(TENANT, m, errors[half:]) for m in ("sea-optwin", "sea-ddm")]
        )
        stats = cluster.stats(TENANT, "sea-ddm")
        assert stats["n_seen"] == len(errors)
        print(
            f"after reshard: sea-ddm n_seen={stats['n_seen']} "
            f"drifts={stats['n_drifts']} (stream continued seamlessly)"
        )
    finally:
        cluster.close()


def observability_act() -> None:
    """Trace an ingest, scrape the hub as Prometheus text, read the journal.

    The server exposes the same three surfaces over the wire (``--trace-dir``
    + the ``trace`` op, ``--metrics-port`` + the ``metrics_prom`` op, and the
    ``events`` op) — see docs/observability.md.
    """
    from repro.obs.journal import EventJournal
    from repro.obs.prom import hub_exposition
    from repro.obs.trace import Tracer, write_chrome_trace

    stream = MultiConceptDriftStream(
        [
            SeaGenerator(classification_function=1, noise_fraction=0.05, seed=1),
            SeaGenerator(classification_function=3, noise_fraction=0.05, seed=2),
        ],
        drift_positions=[2_000],
        seed=4,
    )
    learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
    errors = []
    for instance in stream.take(4_000):
        errors.append(1.0 if learner.predict_one(instance) != instance.y else 0.0)
        learner.learn_one(instance)

    hub = MonitorHub(
        tracer=Tracer(sample_rate=1.0),  # production would sample, say, 1%
        journal=EventJournal(),
    )
    hub.register(TENANT, "sea-optwin", "OPTWIN", {"w_max": 5_000})
    hub.register(TENANT, "sea-ddm", "DDM")
    hub.ingest([(TENANT, m, errors) for m in ("sea-optwin", "sea-ddm")])

    # Every n_* counter, latency summary, and per-detector-class update-time
    # histogram, in the text format any Prometheus-compatible scraper reads.
    exposition = hub_exposition(hub)
    print("\nPrometheus exposition (cost-attribution lines):")
    for line in exposition.splitlines():
        if line.startswith("repro_monitor_update_seconds_total"):
            print(f"  {line}")

    # The sampled ingest became a span tree; export it for Perfetto.
    trace_path = Path(tempfile.mkdtemp(prefix="live-monitoring-obs-")) / (
        "trace.json"
    )
    spans = hub.drain_trace()
    write_chrome_trace(trace_path, spans)
    print(
        f"{len(spans)} spans ({', '.join(sorted({s['name'] for s in spans}))}) "
        f"-> {trace_path}\n  (open at https://ui.perfetto.dev)"
    )
    hub.close()


if __name__ == "__main__":
    main()
