"""Spam-filter monitoring: adapt a Naive Bayes classifier to drifting spam.

This mirrors the paper's motivating use case (Fdez-Riverola et al.): spammers
keep changing strategy, so a pre-trained filter degrades until a drift detector
notices and triggers retraining.  The "spam" stream is an AGRAWAL-style
synthetic classification stream whose concept (the spammers' strategy) changes
twice; the example compares a static Naive Bayes filter against drift-aware
filters using OPTWIN and ADWIN.

Run with::

    python examples/spam_filter_monitoring.py
"""

from __future__ import annotations

from repro import Adwin, Optwin
from repro.evaluation import evaluate_detections, run_prequential
from repro.learners import NaiveBayes
from repro.streams import MultiConceptDriftStream
from repro.streams.synthetic import AgrawalGenerator

N_INSTANCES = 15_000
DRIFT_POSITIONS = [5_000, 10_000]


def build_spam_stream(seed: int) -> MultiConceptDriftStream:
    """Three successive 'spammer strategies' as AGRAWAL concepts."""
    concepts = [
        AgrawalGenerator(classification_function=function_id, seed=seed + function_id)
        for function_id in (1, 3, 5)
    ]
    return MultiConceptDriftStream(concepts, DRIFT_POSITIONS, width=1, seed=seed)


def run_configuration(name, detector_factory, seed=1):
    stream = build_spam_stream(seed)
    learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
    detector = detector_factory() if detector_factory else None
    result = run_prequential(
        stream=stream,
        learner=learner,
        detector=detector,
        n_instances=N_INSTANCES,
        curve_window=1_000,
    )
    evaluation = evaluate_detections(
        drift_positions=DRIFT_POSITIONS,
        detections=result.detections,
        stream_length=N_INSTANCES,
    )
    print(f"\n=== {name} ===")
    print(f"  overall accuracy : {100 * result.accuracy:.2f}%")
    print(f"  detections       : {result.detections}")
    print(f"  true positives   : {evaluation.true_positives} / {len(DRIFT_POSITIONS)}")
    print(f"  false positives  : {evaluation.false_positives}")
    if evaluation.delays:
        print(f"  detection delays : {evaluation.delays}")
    curve = " ".join(f"{100 * a:.0f}" for a in result.accuracy_curve)
    print(f"  windowed accuracy (per 1,000 e-mails): {curve}")
    return result


def main() -> None:
    print("Spam-filter monitoring with concept drifts at", DRIFT_POSITIONS)
    static = run_configuration("Static filter (no drift detector)", None)
    optwin = run_configuration(
        "Drift-aware filter (OPTWIN rho=0.5)", lambda: Optwin(delta=0.99, rho=0.5)
    )
    adwin = run_configuration("Drift-aware filter (ADWIN)", Adwin)

    print("\n=== Summary ===")
    print(f"  static accuracy : {100 * static.accuracy:.2f}%")
    print(f"  OPTWIN accuracy : {100 * optwin.accuracy:.2f}% "
          f"({optwin.n_detections} retraining events)")
    print(f"  ADWIN accuracy  : {100 * adwin.accuracy:.2f}% "
          f"({adwin.n_detections} retraining events)")


if __name__ == "__main__":
    main()
