"""Setup shim enabling legacy editable installs on machines without ``wheel``.

``pip install -e . --no-use-pep517 --no-build-isolation`` falls back to
``setup.py develop``, which works offline; all real metadata (name, version,
``src``-layout package discovery, the numpy dependency) lives in
``pyproject.toml`` and is resolved by setuptools>=61 from there.
"""

from setuptools import setup

setup()
