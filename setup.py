"""Setup shim enabling legacy editable installs on machines without ``wheel``.

``pip install -e . --no-use-pep517 --no-build-isolation`` falls back to
``setup.py develop``, which works offline; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
